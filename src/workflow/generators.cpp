#include "workflow/generators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/distributions.hpp"

namespace deco::workflow {
namespace {

constexpr double kKB = 1024.0;
constexpr double kMB = 1024.0 * kKB;

/// Mean runtime/data profile of one task type (Juve et al., FGCS 2013).
struct Profile {
  const char* executable;
  double runtime_s;
  double input_mb;
  double output_mb;
};

// Montage (Table 4 of the characterization paper, rounded).
constexpr Profile kMProject{"mProjectPP", 1.73, 4.2, 8.1};
constexpr Profile kMDiffFit{"mDiffFit", 0.66, 16.3, 0.6};
constexpr Profile kMConcatFit{"mConcatFit", 143.26, 1.2, 1.2};
constexpr Profile kMBgModel{"mBgModel", 384.49, 1.1, 0.1};
constexpr Profile kMBackground{"mBackground", 1.72, 8.5, 8.1};
constexpr Profile kMImgtbl{"mImgtbl", 2.78, 409.0, 0.01};
constexpr Profile kMAdd{"mAdd", 282.37, 1040.0, 775.0};
constexpr Profile kMShrink{"mShrink", 66.10, 775.0, 0.25};
constexpr Profile kMJPEG{"mJPEG", 0.64, 25.3, 0.39};

// LIGO Inspiral.
constexpr Profile kTmpltBank{"TmpltBank", 18.14, 224.0, 0.9};
constexpr Profile kInspiral{"Inspiral", 460.21, 225.0, 0.3};
constexpr Profile kThinca{"Thinca", 5.37, 0.9, 0.03};
constexpr Profile kTrigBank{"TrigBank", 5.11, 0.03, 0.0002};

// Epigenomics.
constexpr Profile kFastQSplit{"fastQSplit", 34.32, 1777.0, 1777.0};
constexpr Profile kFilterContams{"filterContams", 2.47, 27.8, 27.7};
constexpr Profile kSol2Sanger{"sol2sanger", 0.48, 13.0, 10.1};
constexpr Profile kFastq2Bfq{"fast2bfq", 1.40, 10.1, 2.2};
constexpr Profile kMap{"map", 201.89, 140.0, 0.9};
constexpr Profile kMapMerge{"mapMerge", 11.01, 57.9, 57.9};
constexpr Profile kMaqIndex{"maqIndex", 43.57, 107.0, 107.0};
constexpr Profile kPileup{"pileup", 55.95, 107.0, 84.0};

// CyberShake.
constexpr Profile kExtractSGT{"ExtractSGT", 110.58, 40960.0, 155.0};
constexpr Profile kSeisSynth{"SeismogramSynthesis", 79.47, 156.0, 0.02};
constexpr Profile kZipSeis{"ZipSeis", 265.73, 101.0, 101.0};
constexpr Profile kPeakValCalc{"PeakValCalc", 0.55, 0.02, 0.0001};
constexpr Profile kZipPSA{"ZipPSA", 195.80, 4.5, 4.5};

/// Multiplicative jitter around the profile mean: truncated normal with 20%
/// coefficient of variation, matching the generator's per-instance variation.
double jitter(util::Rng& rng) {
  const double z = util::Normal{1.0, 0.2}.sample(rng);
  return std::clamp(z, 0.25, 2.5);
}

TaskId add(Workflow& wf, const Profile& p, std::size_t index, util::Rng& rng) {
  Task t;
  t.name = std::string(p.executable) + "_" + std::to_string(index);
  t.executable = p.executable;
  const double j = jitter(rng);
  t.cpu_seconds = p.runtime_s * j;
  t.input_bytes = p.input_mb * kMB * j;
  t.output_bytes = p.output_mb * kMB * j;
  return wf.add_task(t);
}

/// Edge bytes default to the child's share of the parent's output.
void link(Workflow& wf, TaskId parent, TaskId child) {
  const double share =
      wf.task(parent).output_bytes /
      std::max<std::size_t>(1, wf.children(parent).size() + 1);
  wf.add_edge(parent, child, share);
}

}  // namespace

std::string to_string(AppType type) {
  switch (type) {
    case AppType::kMontage: return "Montage";
    case AppType::kLigo: return "Ligo";
    case AppType::kEpigenomics: return "Epigenomics";
    case AppType::kCyberShake: return "CyberShake";
    case AppType::kPipeline: return "Pipeline";
  }
  return "Unknown";
}

Workflow make_montage_by_width(std::size_t projects, util::Rng& rng) {
  projects = std::max<std::size_t>(projects, 2);
  Workflow wf("Montage");

  std::vector<TaskId> project_ids;
  project_ids.reserve(projects);
  for (std::size_t i = 0; i < projects; ++i) {
    project_ids.push_back(add(wf, kMProject, i, rng));
  }

  // Each mDiffFit compares an overlapping pair of projected images; the
  // characterization gives roughly 3 overlaps per image interiorly.  We link
  // consecutive pairs plus a stride-2 pair, capped to available images.
  std::vector<TaskId> diff_ids;
  std::size_t diff_index = 0;
  auto add_diff = [&](std::size_t a, std::size_t b) {
    const TaskId d = add(wf, kMDiffFit, diff_index++, rng);
    link(wf, project_ids[a], d);
    link(wf, project_ids[b], d);
    diff_ids.push_back(d);
  };
  for (std::size_t i = 0; i + 1 < projects; ++i) add_diff(i, i + 1);
  for (std::size_t i = 0; i + 2 < projects; i += 2) add_diff(i, i + 2);

  const TaskId concat = add(wf, kMConcatFit, 0, rng);
  for (TaskId d : diff_ids) link(wf, d, concat);

  const TaskId bgmodel = add(wf, kMBgModel, 0, rng);
  link(wf, concat, bgmodel);

  std::vector<TaskId> background_ids;
  background_ids.reserve(projects);
  for (std::size_t i = 0; i < projects; ++i) {
    const TaskId b = add(wf, kMBackground, i, rng);
    link(wf, project_ids[i], b);
    link(wf, bgmodel, b);
    background_ids.push_back(b);
  }

  const TaskId imgtbl = add(wf, kMImgtbl, 0, rng);
  for (TaskId b : background_ids) link(wf, b, imgtbl);

  const TaskId madd = add(wf, kMAdd, 0, rng);
  link(wf, imgtbl, madd);

  const TaskId shrink = add(wf, kMShrink, 0, rng);
  link(wf, madd, shrink);

  const TaskId jpeg = add(wf, kMJPEG, 0, rng);
  link(wf, shrink, jpeg);

  return wf;
}

Workflow make_montage(int degree, util::Rng& rng) {
  // Degree d covers ~d^2 square degrees; with 2MASS J-band plate coverage the
  // projection width grows quadratically.  Calibrated so Montage-1 ~ 80
  // tasks, Montage-4 ~ 300, Montage-8 ~ 1000 (the paper's 20-1000 task range).
  const int d = std::max(degree, 1);
  const auto projects = static_cast<std::size_t>(std::lround(14.0 + 4.4 * d * d));
  Workflow wf = make_montage_by_width(projects, rng);
  wf.set_name("Montage-" + std::to_string(d));
  return wf;
}

Workflow make_ligo(std::size_t num_tasks, util::Rng& rng) {
  // Structure: TmpltBank (n) -> Inspiral (n) -> Thinca (per group) ->
  // TrigBank (n2) -> Inspiral (n2) -> Thinca.  Roughly 4 tasks per channel.
  Workflow wf("Ligo");
  const std::size_t channels = std::max<std::size_t>(2, num_tasks / 4);
  const std::size_t group = 5;

  std::vector<TaskId> thinca1;
  std::size_t idx = 0;
  for (std::size_t g = 0; g * group < channels; ++g) {
    const std::size_t begin = g * group;
    const std::size_t end = std::min(channels, begin + group);
    std::vector<TaskId> inspirals;
    for (std::size_t c = begin; c < end; ++c) {
      const TaskId bank = add(wf, kTmpltBank, idx, rng);
      const TaskId insp = add(wf, kInspiral, idx, rng);
      ++idx;
      link(wf, bank, insp);
      inspirals.push_back(insp);
    }
    const TaskId th = add(wf, kThinca, g, rng);
    for (TaskId i2 : inspirals) link(wf, i2, th);
    thinca1.push_back(th);
  }

  // Second stage: each first-stage Thinca seeds a TrigBank -> Inspiral pair,
  // all merged by a final Thinca.
  const TaskId final_thinca = add(wf, kThinca, 9000, rng);
  for (std::size_t g = 0; g < thinca1.size(); ++g) {
    const TaskId trig = add(wf, kTrigBank, g, rng);
    link(wf, thinca1[g], trig);
    const TaskId insp = add(wf, kInspiral, 9000 + g, rng);
    link(wf, trig, insp);
    link(wf, insp, final_thinca);
  }
  return wf;
}

Workflow make_epigenomics(std::size_t num_tasks, util::Rng& rng) {
  // fastQSplit -> n lanes of (filterContams -> sol2sanger -> fast2bfq -> map)
  // -> mapMerge -> maqIndex -> pileup.  4 tasks per lane + 4 fixed.
  Workflow wf("Epigenomics");
  const std::size_t lanes =
      std::max<std::size_t>(1, (std::max<std::size_t>(num_tasks, 8) - 4) / 4);

  const TaskId split = add(wf, kFastQSplit, 0, rng);
  const TaskId merge = add(wf, kMapMerge, 0, rng);
  for (std::size_t l = 0; l < lanes; ++l) {
    const TaskId filter = add(wf, kFilterContams, l, rng);
    link(wf, split, filter);
    const TaskId sol = add(wf, kSol2Sanger, l, rng);
    link(wf, filter, sol);
    const TaskId bfq = add(wf, kFastq2Bfq, l, rng);
    link(wf, sol, bfq);
    const TaskId map = add(wf, kMap, l, rng);
    link(wf, bfq, map);
    link(wf, map, merge);
  }
  const TaskId index = add(wf, kMaqIndex, 0, rng);
  link(wf, merge, index);
  const TaskId pileup = add(wf, kPileup, 0, rng);
  link(wf, index, pileup);
  return wf;
}

Workflow make_cybershake(std::size_t num_tasks, util::Rng& rng) {
  // ExtractSGT (s) each fanning to k SeismogramSynthesis -> PeakValCalc
  // pairs; Zip tasks collect both stages.
  Workflow wf("CyberShake");
  const std::size_t pairs =
      std::max<std::size_t>(2, (std::max<std::size_t>(num_tasks, 8) - 4) / 2);
  const std::size_t sgts = std::max<std::size_t>(2, pairs / 10);

  std::vector<TaskId> sgt_ids;
  for (std::size_t s = 0; s < sgts; ++s) sgt_ids.push_back(add(wf, kExtractSGT, s, rng));
  const TaskId zip_seis = add(wf, kZipSeis, 0, rng);
  const TaskId zip_psa = add(wf, kZipPSA, 0, rng);
  for (std::size_t p = 0; p < pairs; ++p) {
    const TaskId synth = add(wf, kSeisSynth, p, rng);
    link(wf, sgt_ids[p % sgts], synth);
    const TaskId peak = add(wf, kPeakValCalc, p, rng);
    link(wf, synth, peak);
    link(wf, synth, zip_seis);
    link(wf, peak, zip_psa);
  }
  return wf;
}

Workflow make_pipeline(std::size_t num_tasks, util::Rng& rng) {
  Workflow wf("Pipeline");
  num_tasks = std::max<std::size_t>(num_tasks, 1);
  TaskId prev = kInvalidTask;
  for (std::size_t i = 0; i < num_tasks; ++i) {
    Task t;
    t.name = "ID" + std::to_string(i);
    t.executable = "process" + std::to_string(i);
    t.cpu_seconds = 60.0 * jitter(rng);
    t.input_bytes = 64.0 * kMB * jitter(rng);
    t.output_bytes = 64.0 * kMB * jitter(rng);
    const TaskId id = wf.add_task(t);
    if (prev != kInvalidTask) wf.add_edge(prev, id, wf.task(prev).output_bytes);
    prev = id;
  }
  return wf;
}

Workflow make_workflow(AppType type, std::size_t num_tasks, util::Rng& rng) {
  switch (type) {
    case AppType::kMontage: {
      // Total tasks ~= 3.5 * projects + 6; solve for the project width.
      const auto p = static_cast<std::size_t>(
          std::max(2.0, (static_cast<double>(num_tasks) - 6.0) / 3.5));
      Workflow wf = make_montage_by_width(p, rng);
      wf.set_name("Montage");
      return wf;
    }
    case AppType::kLigo:
      return make_ligo(num_tasks, rng);
    case AppType::kEpigenomics:
      return make_epigenomics(num_tasks, rng);
    case AppType::kCyberShake:
      return make_cybershake(num_tasks, rng);
    case AppType::kPipeline:
      return make_pipeline(num_tasks, rng);
  }
  return Workflow("empty");
}

}  // namespace deco::workflow
