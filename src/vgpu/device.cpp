#include "vgpu/device.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace deco::vgpu {

namespace {

/// Publishes one launch's occupancy/steal accounting to the obs registry.
void record_launch(const LaunchInfo& info) {
  DECO_OBS_COUNTER_ADD("vgpu.launches", 1);
  DECO_OBS_COUNTER_ADD("vgpu.blocks", info.blocks);
  DECO_OBS_COUNTER_ADD("vgpu.chunks", info.chunks);
  DECO_OBS_COUNTER_ADD("vgpu.steals", info.steals);
  DECO_OBS_GAUGE_SET("vgpu.last_participants",
                     static_cast<double>(info.participants));
#if defined(DECO_OBS_DISABLED)
  (void)info;
#endif
}

}  // namespace

void SerialBackend::launch(const LaunchConfig& config, const Kernel& kernel) {
  // One context serves every block in turn (capacity persists across
  // launches, so steady state allocates nothing).
  for (std::size_t b = 0; b < config.blocks; ++b) {
    if (config.cancel != nullptr && config.cancel->cancelled()) {
      throw util::BudgetExhaustedError(util::BudgetTrigger::kCancel);
    }
    context_.reset(b, config.lanes_per_block, config.shared_doubles,
                   block_rng(config, b));
    kernel(context_);
  }
  last_ = LaunchInfo{config.blocks, config.blocks, 0, config.blocks ? 1u : 0u};
  record_launch(last_);
}

VirtualGpuBackend::VirtualGpuBackend(std::size_t workers)
    : pool_(workers), contexts_(pool_.participant_count()) {}

void VirtualGpuBackend::launch(const LaunchConfig& config,
                               const Kernel& kernel) {
  // Chunked block claiming: coarse enough that a claim's CAS is amortized
  // over several blocks, fine enough that stealing can rebalance a skewed
  // tail (cached vs uncached plans differ a lot per block).
  const std::size_t chunk = std::clamp<std::size_t>(
      config.blocks / (4 * pool_.participant_count()), 1, 16);
  const auto stats = pool_.run(
      config.blocks, chunk,
      [&](std::size_t begin, std::size_t end, std::size_t participant) {
        // Each participant reuses its own pre-built context; the block index
        // alone determines the kernel's inputs, so which participant runs a
        // block cannot affect results.
        BlockContext& ctx = contexts_[participant];
        for (std::size_t b = begin; b < end; ++b) {
          ctx.reset(b, config.lanes_per_block, config.shared_doubles,
                    block_rng(config, b));
          kernel(ctx);
        }
      },
      config.cancel);
  last_ = LaunchInfo{stats.blocks, stats.chunks, stats.steals,
                     stats.participants};
  record_launch(last_);
}

std::unique_ptr<ComputeBackend> make_backend(const std::string& name,
                                             std::size_t workers) {
  if (name == "vgpu") return std::make_unique<VirtualGpuBackend>(workers);
  return std::make_unique<SerialBackend>();
}

}  // namespace deco::vgpu
