#include "vgpu/device.hpp"

namespace deco::vgpu {

void SerialBackend::launch(const LaunchConfig& config, const Kernel& kernel) {
  for (std::size_t b = 0; b < config.blocks; ++b) {
    BlockContext ctx(b, config.lanes_per_block, config.shared_doubles,
                     block_rng(config, b));
    kernel(ctx);
  }
}

VirtualGpuBackend::VirtualGpuBackend(std::size_t workers) : pool_(workers) {}

void VirtualGpuBackend::launch(const LaunchConfig& config,
                               const Kernel& kernel) {
  pool_.parallel_for(config.blocks, [&](std::size_t b) {
    BlockContext ctx(b, config.lanes_per_block, config.shared_doubles,
                     block_rng(config, b));
    kernel(ctx);
  });
}

std::unique_ptr<ComputeBackend> make_backend(const std::string& name,
                                             std::size_t workers) {
  if (name == "vgpu") return std::make_unique<VirtualGpuBackend>(workers);
  return std::make_unique<SerialBackend>();
}

}  // namespace deco::vgpu
