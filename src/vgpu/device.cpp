#include "vgpu/device.hpp"

namespace deco::vgpu {

std::unique_ptr<BlockContext> ComputeBackend::acquire_context() {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!pool_.empty()) {
      auto ctx = std::move(pool_.back());
      pool_.pop_back();
      return ctx;
    }
  }
  return std::make_unique<BlockContext>();
}

void ComputeBackend::release_context(std::unique_ptr<BlockContext> ctx) {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  pool_.push_back(std::move(ctx));
}

void SerialBackend::launch(const LaunchConfig& config, const Kernel& kernel) {
  // One pooled context serves every block in turn.
  auto ctx = acquire_context();
  for (std::size_t b = 0; b < config.blocks; ++b) {
    ctx->reset(b, config.lanes_per_block, config.shared_doubles,
               block_rng(config, b));
    kernel(*ctx);
  }
  release_context(std::move(ctx));
}

VirtualGpuBackend::VirtualGpuBackend(std::size_t workers) : pool_(workers) {}

void VirtualGpuBackend::launch(const LaunchConfig& config,
                               const Kernel& kernel) {
  // Each worker checks one context out for its contiguous chunk of blocks,
  // so a launch touches at most worker_count() contexts regardless of block
  // count, and steady-state launches allocate nothing.
  pool_.parallel_chunks(
      config.blocks, [&](std::size_t begin, std::size_t end, std::size_t) {
        // A throwing kernel drops the context (unique_ptr unwinds) rather
        // than returning it; the pool simply re-creates one next launch.
        auto ctx = acquire_context();
        for (std::size_t b = begin; b < end; ++b) {
          ctx->reset(b, config.lanes_per_block, config.shared_doubles,
                     block_rng(config, b));
          kernel(*ctx);
        }
        release_context(std::move(ctx));
      });
}

std::unique_ptr<ComputeBackend> make_backend(const std::string& name,
                                             std::size_t workers) {
  if (name == "vgpu") return std::make_unique<VirtualGpuBackend>(workers);
  return std::make_unique<SerialBackend>();
}

}  // namespace deco::vgpu
