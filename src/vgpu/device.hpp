// Virtual-GPU compute backend.
//
// The paper accelerates probabilistic evaluation on an NVIDIA K40 with a
// specific decomposition (Section 5.2/5.3): one thread *block* per searched
// state, one *thread* per Monte Carlo iteration, temporary results in
// per-block *shared memory*, no cross-block communication.  This module
// reproduces that execution model on the host so the same kernel code runs
// with identical semantics:
//
//   * a Block is a cooperative group of `lane_count` lanes with a private
//     shared-memory scratch buffer;
//   * blocks never communicate; lanes within a block reduce via shared();
//   * lanes are dispatched in *batches* (run_lanes) so Monte Carlo inner
//     loops are tight strided loops over contiguous per-lane arrays, not
//     per-lane indirect calls;
//   * VirtualGpuBackend schedules blocks over a work-stealing dispatcher
//     (participants play the role of streaming multiprocessors, claiming
//     chunks of blocks and stealing from laggards); SerialBackend runs
//     everything on the calling thread and is the baseline for the paper's
//     speed-up comparisons (GPU vs CPU search).
//
// Determinism contract: a block's entire RNG state derives from its seed
// (LaunchConfig::seed or block_seeds) and each lane's stream from
// lane_seed(lane) — counter-based per-(block, lane) streams.  No kernel
// input depends on which participant executes a block or in what order, so
// serial and work-stealing execution are bit-identical at any worker count
// (tests/vgpu/parallel_determinism_test.cpp holds this for the evaluator).
//
// Block contexts are pooled/per-participant and reused across launches
// (their shared-memory buffer and scratch arena keep their capacity),
// mirroring how real shared memory is a fixed hardware resource rather than
// a per-launch allocation — and keeping the Monte Carlo hot path
// allocation-free.
//
// Substitution note (DESIGN.md): no CUDA device is available in this
// environment; the backend preserves the paper's kernel decomposition and
// memory layout so the parallel-vs-serial comparison exercises the same code
// structure the GPU implementation would.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "util/aligned.hpp"
#include "util/budget.hpp"
#include "util/rng.hpp"
#include "util/worksteal.hpp"

namespace deco::vgpu {

/// Execution context handed to a kernel, one per block.  Default-constructed
/// contexts are inert until reset(); backends reset a pooled context for
/// every block they run.
class BlockContext {
 public:
  BlockContext() = default;
  BlockContext(std::size_t block_index, std::size_t lane_count,
               std::size_t shared_doubles, util::Rng block_rng) {
    reset(block_index, lane_count, shared_doubles, block_rng);
  }

  /// Re-targets this context at a new block: shared memory is re-zeroed, the
  /// scratch arena is rewound (capacity retained), and the lane seed base is
  /// derived once from the block stream.
  void reset(std::size_t block_index, std::size_t lane_count,
             std::size_t shared_doubles, util::Rng block_rng) {
    block_index_ = block_index;
    lane_count_ = lane_count;
    shared_.assign(shared_doubles, 0.0);
    rng_ = block_rng;
    scratch_cursor_ = 0;
    // Derive the lane seed base from the block stream without consuming it.
    util::Rng probe = rng_;
    lane_base_ = probe();
  }

  std::size_t block_index() const { return block_index_; }
  std::size_t lane_count() const { return lane_count_; }

  /// Per-block shared-memory scratch (zero-initialized at block start).
  std::span<double> shared() { return shared_; }

  /// Borrows `count` doubles from the block's reusable scratch arena — the
  /// software analogue of statically-sized per-block local arrays.  Buffers
  /// are 64-byte aligned and stay valid until the next reset(); contents are
  /// unspecified until written, so lane-reset accumulators must be cleared
  /// by the kernel.  Repeated borrows return distinct buffers (stable across
  /// arena growth).
  std::span<double> scratch_doubles(std::size_t count) {
    if (scratch_cursor_ == scratch_.size()) scratch_.emplace_back();
    auto& buf = scratch_[scratch_cursor_++];
    if (buf.size() < count) buf.resize(count);
    return {buf.data(), count};
  }

  /// Lane-batched dispatch: runs fn(lane_begin, lane_end) over [begin, end).
  /// fn walks the lane range itself — typically a tight strided loop over
  /// contiguous per-lane arrays, pulling each lane's deterministic stream
  /// seed from lane_seed() — so the Monte Carlo inner loop carries no
  /// per-lane call overhead at all.  Statically dispatched (no
  /// std::function).
  template <typename Fn>
  void run_lanes(std::size_t begin, std::size_t end, Fn&& fn) {
    fn(begin, std::min(end, lane_count_));
  }

  /// Per-lane convenience over run_lanes: fn(lane, rng) with a deterministic
  /// per-lane RNG stream derived from the block stream.  Lanes may be
  /// executed in any order; they must only communicate through shared()
  /// after the loop.
  template <typename Fn>
  void for_each_lane(Fn&& fn) {
    run_lanes(0, lane_count_, [&](std::size_t begin, std::size_t end) {
      util::Rng lane_rng;
      for (std::size_t lane = begin; lane < end; ++lane) {
        lane_rng.reseed(lane_seed(lane));
        fn(lane, lane_rng);
      }
    });
  }

  /// Seed of lane `lane`'s RNG stream: the block base draw (computed once at
  /// reset) whitened per lane.
  std::uint64_t lane_seed(std::size_t lane) const {
    return lane_base_ ^ (0x9E3779B97F4A7C15ULL * (lane + 1));
  }

 private:
  std::size_t block_index_ = 0;
  std::size_t lane_count_ = 0;
  util::AlignedVector<double> shared_;
  std::vector<util::AlignedVector<double>> scratch_;
  std::size_t scratch_cursor_ = 0;
  util::Rng rng_;
  std::uint64_t lane_base_ = 0;
};

/// Kernel: executed once per block (per-block type erasure only; the
/// per-lane hot loop inside a block goes through run_lanes and stays
/// statically dispatched).
using Kernel = std::function<void(BlockContext&)>;

struct LaunchConfig {
  std::size_t blocks = 1;
  std::size_t lanes_per_block = 32;
  std::size_t shared_doubles = 64;  ///< shared-memory scratch per block
  std::uint64_t seed = 42;          ///< base seed; block b uses seed ^ f(b)
  /// Optional explicit per-block seeds (size == blocks).  Lets callers make a
  /// block's stream a function of its *payload* rather than its index, so the
  /// same work item gives identical results whether evaluated alone or
  /// batched with others.
  std::vector<std::uint64_t> block_seeds;
  /// Optional cooperative cancel: polled between blocks (serial) or between
  /// chunk claims (vgpu).  A cancelled launch throws BudgetExhaustedError
  /// after draining; blocks already inside the kernel run to completion.
  const util::CancelToken* cancel = nullptr;
};

/// Occupancy/steal accounting of the most recent launch (vgpu backend; the
/// serial backend reports one participant and zero steals).
struct LaunchInfo {
  std::size_t blocks = 0;
  std::size_t chunks = 0;        ///< work-stealing chunk claims
  std::size_t steals = 0;        ///< successful range steals
  std::size_t participants = 0;  ///< threads that executed >= 1 block
};

/// Abstract device.
class ComputeBackend {
 public:
  virtual ~ComputeBackend() = default;
  virtual std::string name() const = 0;
  /// Runs `kernel` for every block in the config; returns after all blocks.
  virtual void launch(const LaunchConfig& config, const Kernel& kernel) = 0;
  /// Occupancy/steal stats of the most recent launch (also mirrored to the
  /// obs registry under "vgpu.*" counters).
  virtual LaunchInfo last_launch() const { return {}; }

 protected:
  static util::Rng block_rng(const LaunchConfig& config, std::size_t block) {
    if (block < config.block_seeds.size()) {
      return util::Rng(config.block_seeds[block]);
    }
    return util::Rng(config.seed ^ (0xD5A61266F0C9392CULL * (block + 1)));
  }
};

/// Runs every block on the calling thread (the paper's CPU baseline shape).
class SerialBackend final : public ComputeBackend {
 public:
  std::string name() const override { return "serial"; }
  void launch(const LaunchConfig& config, const Kernel& kernel) override;
  LaunchInfo last_launch() const override { return last_; }

 private:
  BlockContext context_;  // reused across every block and launch
  LaunchInfo last_;
};

/// Schedules blocks over a work-stealing participant pool; semantics
/// identical to SerialBackend (bit-identical results at any worker count).
class VirtualGpuBackend final : public ComputeBackend {
 public:
  /// `workers` = number of simulated multiprocessors (0 = hardware threads).
  /// The launching thread participates too, so blocks run on up to
  /// workers + 1 threads.
  explicit VirtualGpuBackend(std::size_t workers = 0);
  std::string name() const override { return "vgpu"; }
  void launch(const LaunchConfig& config, const Kernel& kernel) override;
  LaunchInfo last_launch() const override { return last_; }
  std::size_t worker_count() const { return pool_.size(); }

 private:
  util::WorkStealingPool pool_;
  // One pre-built context per participant, indexed by the dispatcher's
  // stable participant id: no pool mutex, no allocation on the launch path.
  std::vector<BlockContext> contexts_;
  LaunchInfo last_;
};

/// Factory used by engine options ("serial" | "vgpu").
std::unique_ptr<ComputeBackend> make_backend(const std::string& name,
                                             std::size_t workers = 0);

}  // namespace deco::vgpu
