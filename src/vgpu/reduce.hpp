// Block-level reductions over shared memory.
//
// The paper's kernels store per-lane temporaries in shared memory and reduce
// within the block ("we store the temporary results of each thread into the
// shared memory for fast synchronization").  These helpers implement the
// reduction step of that pattern; they run after all lanes of a block have
// written their slots (for_each_lane returns), mirroring a __syncthreads()
// boundary.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>

namespace deco::vgpu {

/// Sum of the first `n` shared-memory slots.
inline double block_reduce_sum(std::span<const double> shared, std::size_t n) {
  double acc = 0;
  n = std::min(n, shared.size());
  for (std::size_t i = 0; i < n; ++i) acc += shared[i];
  return acc;
}

/// Mean of the first `n` slots (0 for n == 0).
inline double block_reduce_mean(std::span<const double> shared,
                                std::size_t n) {
  n = std::min(n, shared.size());
  return n == 0 ? 0.0 : block_reduce_sum(shared, n) / static_cast<double>(n);
}

inline double block_reduce_max(std::span<const double> shared,
                               std::size_t n) {
  n = std::min(n, shared.size());
  double acc = n > 0 ? shared[0] : 0.0;
  for (std::size_t i = 1; i < n; ++i) acc = std::max(acc, shared[i]);
  return acc;
}

inline double block_reduce_min(std::span<const double> shared,
                               std::size_t n) {
  n = std::min(n, shared.size());
  double acc = n > 0 ? shared[0] : 0.0;
  for (std::size_t i = 1; i < n; ++i) acc = std::min(acc, shared[i]);
  return acc;
}

/// Number of slots in [0, n) satisfying value <= bound — the kernel-side
/// form of the probabilistic-deadline count P(makespan <= D).
inline std::size_t block_count_within(std::span<const double> shared,
                                      std::size_t n, double bound) {
  std::size_t count = 0;
  n = std::min(n, shared.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (shared[i] <= bound) ++count;
  }
  return count;
}

}  // namespace deco::vgpu
