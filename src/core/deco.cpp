#include "core/deco.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/stats.hpp"

namespace deco::core {
namespace {

/// "vm" | "interp" -> engine; unknown strings keep the default (vm).
wlog::ExecMode resolve_exec(const std::string& name) {
  return wlog::parse_exec_mode(name).value_or(wlog::ExecMode::kVm);
}

}  // namespace

Deco::Deco(const cloud::Catalog& catalog, const cloud::MetadataStore& store,
           DecoOptions options)
    : catalog_(&catalog),
      store_(&store),
      options_(std::move(options)),
      backend_(vgpu::make_backend(options_.backend, options_.backend_workers)) {}

SchedulingResult Deco::schedule(const workflow::Workflow& wf,
                                const ProbDeadline& req,
                                const SchedulingOptions& options) {
  TaskTimeEstimator estimator(*catalog_, *store_, options_.estimator);
  SchedulingProblem problem(wf, estimator, *backend_, options_.eval);
  return problem.solve(req, options);
}

EnsemblePlanResult Deco::plan_ensemble(const workflow::Ensemble& ensemble,
                                       const EnsemblePlanOptions& options) {
  EnsemblePlanner planner(*catalog_, *store_, *backend_,
                          options_.ensemble_eval, options_.estimator);
  return planner.plan(ensemble, options);
}

MigrationDecision Deco::optimize_migration(
    const std::vector<MigrationWorkflowState>& states,
    const SearchOptions& options) {
  // All migration workflows share the estimator; keyed caches are per
  // workflow, so use a fresh estimator per call (states may differ).
  static thread_local std::unique_ptr<TaskTimeEstimator> estimator;
  estimator =
      std::make_unique<TaskTimeEstimator>(*catalog_, *store_, options_.estimator);
  MigrationOptimizer optimizer(*catalog_, *estimator);
  return optimizer.optimize(states, options);
}

WlogSolveResult Deco::solve_program(const std::string& source,
                                    const workflow::Workflow& wf) {
  DECO_OBS_SPAN_TIMED("core", "solve_program", "core.solve_program_ms");
  WlogSolveResult result;
  const wlog::ParseResult parsed = wlog::parse_program(source);
  if (!parsed.ok()) {
    result.error = "parse error (line " + std::to_string(parsed.error->line) +
                   "): " + parsed.error->message;
    return result;
  }
  const wlog::Program& program = parsed.program;

  TaskTimeEstimator estimator(*catalog_, *store_, options_.estimator);
  WlogBridge bridge(wf, estimator);
  const wlog::ProbProgram ir = bridge.build_ir(program);

  DeclarativeOptions dopt;
  dopt.max_states = options_.wlog_max_states;
  dopt.mc_iterations = options_.wlog_mc_iterations;
  dopt.seed = options_.eval.seed;
  dopt.budget = options_.budget;
  dopt.exec = resolve_exec(options_.wlog_exec);
  dopt.segments = options_.wlog_segments;
  DeclarativeSolver solver(dopt);
  const DeclarativeResult solved = solver.solve(program, ir);
  result.stats = solved.stats;
  result.budget = solved.budget;
  if (!solved.ok) {
    result.error = solved.error;
    return result;
  }
  result.ok = true;
  result.goal_value = solved.goal_value;
  result.feasible = solved.feasible;

  // Map the generic assignment back to a provisioning plan when the var
  // declaration is configs-shaped: entities enumerate task facts in task-id
  // order, choices enumerate vm facts in type-id order (assertion order is
  // preserved by the clause database).
  if (solved.entities.size() == wf.task_count() &&
      solved.choices.size() == catalog_->type_count()) {
    result.plan = sim::Plan::uniform(wf.task_count(), 0);
    for (std::size_t t = 0; t < wf.task_count(); ++t) {
      result.plan[t].vm_type =
          static_cast<cloud::TypeId>(solved.assignment[t]);
    }
  }
  return result;
}

WlogEnsembleResult Deco::solve_ensemble_program(
    const std::string& source, const workflow::Ensemble& ensemble) {
  WlogEnsembleResult result;
  const wlog::ParseResult parsed = wlog::parse_program(source);
  if (!parsed.ok()) {
    result.error = "parse error (line " + std::to_string(parsed.error->line) +
                   "): " + parsed.error->message;
    return result;
  }

  // Per-member cheapest deadline-feasible plans feed the wfcost facts.
  const std::size_t n = ensemble.members.size();
  std::vector<double> costs(n, 0);
  std::vector<bool> feasible(n, false);
  result.plans.resize(n);
  EnsemblePlanOptions popt;
  popt.per_workflow.search.budget = options_.budget;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& member = ensemble.members[i];
    TaskTimeEstimator estimator(*catalog_, *store_, options_.estimator);
    SchedulingProblem problem(member.workflow, estimator, *backend_,
                              options_.ensemble_eval);
    ProbDeadline req;
    req.quantile = member.deadline_q / 100.0;
    req.deadline_s = member.deadline_s;
    const SchedulingResult sr = problem.solve(req, popt.per_workflow);
    feasible[i] = sr.found;
    if (sr.found) {
      costs[i] = sr.evaluation.mean_cost;
      result.plans[i] = sr.plan;
    }
  }

  const wlog::ProbProgram ir =
      build_ensemble_ir(parsed.program, ensemble, costs, feasible);
  DeclarativeOptions dopt;
  dopt.max_states = options_.wlog_max_states;
  dopt.mc_iterations = options_.wlog_mc_iterations;
  dopt.seed = options_.eval.seed;
  dopt.budget = options_.budget;
  dopt.exec = resolve_exec(options_.wlog_exec);
  dopt.segments = options_.wlog_segments;
  DeclarativeSolver solver(dopt);
  const DeclarativeResult solved = solver.solve(parsed.program, ir);
  result.stats = solved.stats;
  if (!solved.ok) {
    result.error = solved.error;
    return result;
  }
  result.ok = true;
  result.goal_value = solved.goal_value;
  result.feasible = solved.feasible;
  result.admitted.assign(n, false);
  for (std::size_t i = 0; i < n && i < solved.assignment.size(); ++i) {
    result.admitted[i] = solved.assignment[i] != 0;
    if (!result.admitted[i]) result.plans[i] = sim::Plan{};
  }
  return result;
}

}  // namespace deco::core
