// Spot-instance policy planning (pricing-model extension).
//
// Spot instances trade ~70% lower prices for revocation risk; the sensible
// policy for deadline-constrained workflows is "spot where there is slack":
// a task may run on spot if the extra delay of a few revoked attempts still
// fits inside its slack against the deadline.  Critical-path tasks stay
// on-demand.
#pragma once

#include "core/estimator.hpp"
#include "sim/spot_executor.hpp"

namespace deco::core {

struct SpotPlannerOptions {
  double bid_fraction = 0.6;
  /// A task goes to spot if its slack exceeds this multiple of its own
  /// duration (room for that many lost attempts)...
  double slack_multiple = 2.0;
  /// ...plus this absolute allowance for waiting out a price spike until
  /// the market re-admits the bid (spikes decay over tens of minutes).
  double revocation_delay_s = 900;
};

/// Decides the per-task spot policy for `plan` against `deadline_s`.
sim::SpotPolicy plan_spot_policy(const workflow::Workflow& wf,
                                 const sim::Plan& plan,
                                 TaskTimeEstimator& estimator,
                                 double deadline_s,
                                 const SpotPlannerOptions& options = {});

/// Per-task slack: deadline minus the longest path through the task (mean
/// times under `plan`).  Negative slack means the task is critical for the
/// deadline.
std::vector<double> task_slack(const workflow::Workflow& wf,
                               const sim::Plan& plan,
                               TaskTimeEstimator& estimator,
                               double deadline_s);

}  // namespace deco::core
