#include "core/wlog_bridge.hpp"

#include <vector>

#include "core/followcost.hpp"
#include "obs/obs.hpp"

namespace deco::core {

using wlog::make_atom;
using wlog::make_compound;
using wlog::make_float;
using wlog::make_int;

WlogBridge::WlogBridge(const workflow::Workflow& wf,
                       TaskTimeEstimator& estimator,
                       WlogBridgeOptions options)
    : wf_(&wf), estimator_(&estimator), options_(options) {}

std::string WlogBridge::task_atom(workflow::TaskId id) {
  return "t" + std::to_string(id);
}

std::string WlogBridge::vm_atom(cloud::TypeId id) {
  return "v" + std::to_string(id);
}

std::string WlogBridge::region_atom(cloud::RegionId id) {
  return "r" + std::to_string(id);
}

wlog::ProbProgram WlogBridge::build_ir(const wlog::Program& program) {
  DECO_OBS_SPAN_TIMED("wlog", "translate_ir", "wlog.translate_ms");
  DECO_OBS_COUNTER_ADD("wlog.ir_builds", 1);
  wlog::ProbProgram ir = wlog::translate_rules(program);
  const cloud::Catalog& catalog = estimator_->catalog();

  // Workflow facts, with virtual root/tail bracketing the DAG.
  for (workflow::TaskId t = 0; t < wf_->task_count(); ++t) {
    ir.base().add_fact(make_compound("task", {make_atom(task_atom(t))}));
  }
  for (const workflow::Edge& e : wf_->edges()) {
    ir.base().add_fact(make_compound(
        "edge", {make_atom(task_atom(e.parent)), make_atom(task_atom(e.child))}));
    ir.base().add_fact(make_compound(
        "datasize", {make_atom(task_atom(e.parent)),
                     make_atom(task_atom(e.child)), make_float(e.bytes)}));
  }
  for (workflow::TaskId r : wf_->roots()) {
    ir.base().add_fact(
        make_compound("edge", {make_atom("root"), make_atom(task_atom(r))}));
  }
  for (workflow::TaskId l : wf_->leaves()) {
    ir.base().add_fact(
        make_compound("edge", {make_atom(task_atom(l)), make_atom("tail")}));
  }

  // Cloud facts.
  for (cloud::TypeId v = 0; v < catalog.type_count(); ++v) {
    ir.base().add_fact(make_compound("vm", {make_atom(vm_atom(v))}));
    ir.base().add_fact(make_compound(
        "price", {make_atom(vm_atom(v)),
                  make_float(catalog.price(v, options_.region) / 3600.0)}));
  }
  // Region topology + the data-gravity term: region/1 plus per-pair egress
  // prices so residency and failover goals can price inter-region moves.
  for (cloud::RegionId a = 0; a < catalog.region_count(); ++a) {
    ir.base().add_fact(make_compound("region", {make_atom(region_atom(a))}));
    for (cloud::RegionId b = 0; b < catalog.region_count(); ++b) {
      if (a == b) continue;
      ir.base().add_fact(make_compound(
          "transfer_price", {make_atom(region_atom(a)), make_atom(region_atom(b)),
                             make_float(catalog.egress_price(a))}));
    }
  }

  // Virtual tasks are free, instantaneous, and pre-configured on every type
  // (they are not decision variables, so their configs facts live in the
  // base IR rather than in the per-state binding).
  for (cloud::TypeId v = 0; v < catalog.type_count(); ++v) {
    for (const char* virt : {"root", "tail"}) {
      ir.base().add_fact(make_compound(
          "exetime", {make_atom(virt), make_atom(vm_atom(v)), make_int(0)}));
    }
  }
  for (const char* virt : {"root", "tail"}) {
    ir.base().add_fact(make_compound(
        "configs", {make_atom(virt), make_atom(vm_atom(0)), make_int(1)}));
  }

  // Probabilistic exetime groups: one annotated disjunction per (task, type),
  // discretized to a compact bin count for tractable inference.
  for (workflow::TaskId t = 0; t < wf_->task_count(); ++t) {
    for (cloud::TypeId v = 0; v < catalog.type_count(); ++v) {
      const util::Histogram& hist = estimator_->distribution(*wf_, t, v);
      // Re-bin to options_.exetime_bins quantile points.
      const std::size_t bins = options_.exetime_bins;
      wlog::ProbGroup group;
      group.probs.reserve(bins);
      group.facts.reserve(bins);
      for (std::size_t b = 0; b < bins; ++b) {
        const double q = (static_cast<double>(b) + 0.5) /
                         static_cast<double>(bins) * 100.0;
        group.probs.push_back(1.0 / static_cast<double>(bins));
        group.facts.push_back(make_compound(
            "exetime", {make_atom(task_atom(t)), make_atom(vm_atom(v)),
                        make_float(hist.percentile(q))}));
      }
      ir.add_group(std::move(group));
    }
  }
  return ir;
}

wlog::ProbProgram WlogBridge::bind_plan(const wlog::ProbProgram& ir,
                                        const sim::Plan& plan) const {
  wlog::ProbProgram bound = ir;
  for (workflow::TaskId t = 0; t < wf_->task_count() && t < plan.size(); ++t) {
    bound.base().add_fact(make_compound(
        "configs", {make_atom(task_atom(t)), make_atom(vm_atom(plan[t].vm_type)),
                    make_int(1)}));
    bound.base().add_fact(make_compound(
        "region",
        {make_atom(task_atom(t)), make_atom(region_atom(plan[t].region))}));
  }
  return bound;
}

wlog::ProbProgram build_ensemble_ir(const wlog::Program& program,
                                    const workflow::Ensemble& ensemble,
                                    std::span<const double> member_costs,
                                    const std::vector<bool>& member_feasible) {
  wlog::ProbProgram ir = wlog::translate_rules(program);
  for (std::size_t i = 0; i < ensemble.members.size(); ++i) {
    const std::string atom = "w" + std::to_string(i);
    ir.base().add_fact(make_compound("wkf", {make_atom(atom)}));
    ir.base().add_fact(make_compound(
        "priority",
        {make_atom(atom), make_int(ensemble.members[i].priority)}));
    if (i < member_costs.size()) {
      ir.base().add_fact(make_compound(
          "wfcost", {make_atom(atom), make_float(member_costs[i])}));
    }
    if (i < member_feasible.size() && member_feasible[i]) {
      ir.base().add_fact(make_compound("deadline_ok", {make_atom(atom)}));
    }
  }
  ir.base().add_fact(
      make_compound("budget_limit", {make_float(ensemble.budget)}));
  return ir;
}

wlog::ProbProgram build_migration_ir(
    const wlog::Program& program, const cloud::Catalog& catalog,
    MigrationOptimizer& optimizer,
    const std::vector<MigrationWorkflowState>& states) {
  wlog::ProbProgram ir = wlog::translate_rules(program);
  for (cloud::RegionId r = 0; r < catalog.region_count(); ++r) {
    ir.base().add_fact(
        make_compound("region", {make_atom("r" + std::to_string(r))}));
  }
  for (std::size_t i = 0; i < states.size(); ++i) {
    const std::string w = "w" + std::to_string(i);
    ir.base().add_fact(make_compound("wkf", {make_atom(w)}));
    ir.base().add_fact(make_compound(
        "current",
        {make_atom(w), make_atom("r" + std::to_string(states[i].region))}));
    for (cloud::RegionId r = 0; r < catalog.region_count(); ++r) {
      const std::string region = "r" + std::to_string(r);
      ir.base().add_fact(make_compound(
          "exec_cost", {make_atom(w), make_atom(region),
                        make_float(optimizer.execution_cost(states[i], r))}));
      ir.base().add_fact(make_compound(
          "migr_cost", {make_atom(w), make_atom(region),
                        make_float(optimizer.migration_cost(states[i], r))}));
      if (optimizer.remaining_time(states[i], r) <=
          states[i].remaining_deadline()) {
        ir.base().add_fact(
            make_compound("region_ok", {make_atom(w), make_atom(region)}));
      }
    }
  }
  return ir;
}

}  // namespace deco::core
