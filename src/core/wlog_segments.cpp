#include "core/wlog_segments.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/budget.hpp"

namespace deco::core {
namespace {

using wlog::Term;
using wlog::TermKind;
using wlog::TermPtr;

bool is_ground(const TermPtr& t) {
  if (t->kind == TermKind::kVar) return false;
  for (const TermPtr& a : t->args) {
    if (!is_ground(a)) return false;
  }
  return true;
}

bool ground_equal(const TermPtr& a, const TermPtr& b) {
  static const wlog::Bindings kNoBindings;
  return wlog::term_equal(a, b, kNoBindings);
}

bool call_shape(const TermPtr& t, std::string_view functor, std::size_t n) {
  return t && t->kind == TermKind::kCompound && t->text == functor &&
         t->args.size() == n;
}

bool numeric(const TermPtr& t) {
  return t->kind == TermKind::kInt || t->kind == TermKind::kFloat;
}

/// Pattern-variable environment enforcing a bijection: each role names
/// exactly one clause variable and vice versa (so e.g. the Vid read from
/// price/2 is provably the Vid joined into exetime/3).
struct Roles {
  std::unordered_map<std::string, std::int64_t> by_role;
  std::unordered_map<std::int64_t, std::string> by_id;

  bool var(const TermPtr& t, const std::string& role) {
    if (!t || t->kind != TermKind::kVar) return false;
    const auto r = by_role.find(role);
    const auto i = by_id.find(t->ival);
    if (r == by_role.end() && i == by_id.end()) {
      by_role.emplace(role, t->ival);
      by_id.emplace(t->ival, role);
      return true;
    }
    return r != by_role.end() && i != by_id.end() && r->second == t->ival &&
           i->second == role;
  }
};

/// Matches `f(Ct) :- findall(C, g(Tid,Vid,C), Bag), sum(Bag, Ct).` plus the
/// inner `g(Tid,Vid,C) :- price(Vid,Up), exe(Tid,Vid,T), cfg(Tid,Vid,Con),
/// C is T*Up*Con.`
std::optional<SumShape> match_sum_shape(const wlog::Database& db,
                                        const std::string& functor) {
  const auto& clauses = db.clauses_for(functor, 1);
  if (clauses.size() != 1) return std::nullopt;
  const wlog::Clause& c = clauses[0];
  if (!call_shape(c.head, functor, 1) || c.body.size() != 2) {
    return std::nullopt;
  }
  Roles r;
  if (!r.var(c.head->args[0], "Ct")) return std::nullopt;
  const TermPtr& fa = c.body[0];
  if (!call_shape(fa, "findall", 3)) return std::nullopt;
  if (!r.var(fa->args[0], "C")) return std::nullopt;
  const TermPtr& inner = fa->args[1];
  if (!inner || inner->kind != TermKind::kCompound ||
      inner->args.size() != 3) {
    return std::nullopt;
  }
  if (!r.var(inner->args[0], "Tid") || !r.var(inner->args[1], "Vid") ||
      !r.var(inner->args[2], "C")) {
    return std::nullopt;
  }
  if (!r.var(fa->args[2], "Bag")) return std::nullopt;
  const TermPtr& s = c.body[1];
  if (!call_shape(s, "sum", 2) || !r.var(s->args[0], "Bag") ||
      !r.var(s->args[1], "Ct")) {
    return std::nullopt;
  }

  const auto& inner_clauses = db.clauses_for(inner->text, 3);
  if (inner_clauses.size() != 1) return std::nullopt;
  const wlog::Clause& ic = inner_clauses[0];
  if (!call_shape(ic.head, inner->text, 3) || ic.body.size() != 4) {
    return std::nullopt;
  }
  Roles ir;
  if (!ir.var(ic.head->args[0], "Tid") || !ir.var(ic.head->args[1], "Vid") ||
      !ir.var(ic.head->args[2], "C")) {
    return std::nullopt;
  }
  const TermPtr& price = ic.body[0];
  if (!price || price->kind != TermKind::kCompound ||
      price->args.size() != 2 || !ir.var(price->args[0], "Vid") ||
      !ir.var(price->args[1], "Up")) {
    return std::nullopt;
  }
  const TermPtr& exe = ic.body[1];
  if (!exe || exe->kind != TermKind::kCompound || exe->args.size() != 3 ||
      !ir.var(exe->args[0], "Tid") || !ir.var(exe->args[1], "Vid") ||
      !ir.var(exe->args[2], "T")) {
    return std::nullopt;
  }
  const TermPtr& cfg = ic.body[2];
  if (!cfg || cfg->kind != TermKind::kCompound || cfg->args.size() != 3 ||
      !ir.var(cfg->args[0], "Tid") || !ir.var(cfg->args[1], "Vid") ||
      !ir.var(cfg->args[2], "Con")) {
    return std::nullopt;
  }
  // The parser's 400-level `*` is right-associative, so `C is T*Up*Con`
  // parses as *(T, *(Up, Con)) — the evaluator must multiply in exactly
  // that order to stay bit-identical with the interpreter.
  const TermPtr& is_goal = ic.body[3];
  if (!call_shape(is_goal, "is", 2) || !ir.var(is_goal->args[0], "C")) {
    return std::nullopt;
  }
  const TermPtr& outer_mul = is_goal->args[1];
  if (!call_shape(outer_mul, "*", 2) || !ir.var(outer_mul->args[0], "T")) {
    return std::nullopt;
  }
  const TermPtr& inner_mul = outer_mul->args[1];
  if (!call_shape(inner_mul, "*", 2) || !ir.var(inner_mul->args[0], "Up") ||
      !ir.var(inner_mul->args[1], "Con")) {
    return std::nullopt;
  }
  return SumShape{functor, price->text, exe->text, cfg->text};
}

/// Matches the non-recursive path clause
/// `path(X,Y,Y,Tp) :- edge(X,Y), exe(X,V,T), cfg(X,V,C), C == lit, Tp is T.`
/// Fills `shape`'s edge/exe/cfg functors and con literal.
bool match_path_base(const wlog::Clause& c, const std::string& path_f,
                     PathShape& shape) {
  if (!call_shape(c.head, path_f, 4) || c.body.size() != 5) return false;
  Roles r;
  if (!r.var(c.head->args[0], "X") || !r.var(c.head->args[1], "Y") ||
      !r.var(c.head->args[2], "Y") || !r.var(c.head->args[3], "Tp")) {
    return false;
  }
  const TermPtr& edge = c.body[0];
  if (!edge || edge->kind != TermKind::kCompound || edge->args.size() != 2 ||
      !r.var(edge->args[0], "X") || !r.var(edge->args[1], "Y")) {
    return false;
  }
  const TermPtr& exe = c.body[1];
  if (!exe || exe->kind != TermKind::kCompound || exe->args.size() != 3 ||
      !r.var(exe->args[0], "X") || !r.var(exe->args[1], "V") ||
      !r.var(exe->args[2], "T")) {
    return false;
  }
  const TermPtr& cfg = c.body[2];
  if (!cfg || cfg->kind != TermKind::kCompound || cfg->args.size() != 3 ||
      !r.var(cfg->args[0], "X") || !r.var(cfg->args[1], "V") ||
      !r.var(cfg->args[2], "Con")) {
    return false;
  }
  const TermPtr& eq = c.body[3];
  if (!call_shape(eq, "==", 2) || !r.var(eq->args[0], "Con") ||
      !is_ground(eq->args[1])) {
    return false;
  }
  const TermPtr& is_goal = c.body[4];
  if (!call_shape(is_goal, "is", 2) || !r.var(is_goal->args[0], "Tp") ||
      !r.var(is_goal->args[1], "T")) {
    return false;
  }
  shape.edge_f = edge->text;
  shape.exe_f = exe->text;
  shape.cfg_f = cfg->text;
  shape.con_lit = eq->args[1];
  return true;
}

/// Matches the recursive path clause `path(X,Y,Z,Tp) :- edge(X,Z), Z \== Y,
/// path(Z,Y,Z2,T1), exe(X,V,T), cfg(X,V,C), C == lit, Tp is T + T1.`
/// Functors and literal must agree with what the base clause captured.
bool match_path_step(const wlog::Clause& c, const std::string& path_f,
                     const PathShape& shape) {
  if (!call_shape(c.head, path_f, 4) || c.body.size() != 7) return false;
  Roles r;
  if (!r.var(c.head->args[0], "X") || !r.var(c.head->args[1], "Y") ||
      !r.var(c.head->args[2], "Z") || !r.var(c.head->args[3], "Tp")) {
    return false;
  }
  const TermPtr& edge = c.body[0];
  if (!call_shape(edge, shape.edge_f, 2) || !r.var(edge->args[0], "X") ||
      !r.var(edge->args[1], "Z")) {
    return false;
  }
  const TermPtr& neq = c.body[1];
  if (!call_shape(neq, "\\==", 2) || !r.var(neq->args[0], "Z") ||
      !r.var(neq->args[1], "Y")) {
    return false;
  }
  const TermPtr& rec = c.body[2];
  if (!call_shape(rec, path_f, 4) || !r.var(rec->args[0], "Z") ||
      !r.var(rec->args[1], "Y") || !r.var(rec->args[2], "Z2") ||
      !r.var(rec->args[3], "T1")) {
    return false;
  }
  const TermPtr& exe = c.body[3];
  if (!call_shape(exe, shape.exe_f, 3) || !r.var(exe->args[0], "X") ||
      !r.var(exe->args[1], "V") || !r.var(exe->args[2], "T")) {
    return false;
  }
  const TermPtr& cfg = c.body[4];
  if (!call_shape(cfg, shape.cfg_f, 3) || !r.var(cfg->args[0], "X") ||
      !r.var(cfg->args[1], "V") || !r.var(cfg->args[2], "Con")) {
    return false;
  }
  const TermPtr& eq = c.body[5];
  if (!call_shape(eq, "==", 2) || !r.var(eq->args[0], "Con") ||
      !eq->args[1] || !ground_equal(eq->args[1], shape.con_lit)) {
    return false;
  }
  const TermPtr& is_goal = c.body[6];
  if (!call_shape(is_goal, "is", 2) || !r.var(is_goal->args[0], "Tp")) {
    return false;
  }
  const TermPtr& add = is_goal->args[1];
  return call_shape(add, "+", 2) && r.var(add->args[0], "T") &&
         r.var(add->args[1], "T1");
}

/// Matches `f(P,T) :- setof([Z,T1], path(src,dst,Z,T1), S), max(S, [P,T]).`
std::optional<PathShape> match_path_shape(const wlog::Database& db,
                                          const std::string& functor) {
  const auto& clauses = db.clauses_for(functor, 2);
  if (clauses.size() != 1) return std::nullopt;
  const wlog::Clause& c = clauses[0];
  if (!call_shape(c.head, functor, 2) || c.body.size() != 2) {
    return std::nullopt;
  }
  Roles r;
  if (!r.var(c.head->args[0], "P") || !r.var(c.head->args[1], "T")) {
    return std::nullopt;
  }
  const TermPtr& so = c.body[0];
  if (!call_shape(so, "setof", 3)) return std::nullopt;
  const TermPtr& tmpl = so->args[0];  // [Z, T1]
  if (!tmpl || !tmpl->is_cons() || !r.var(tmpl->args[0], "Z") ||
      !tmpl->args[1]->is_cons() || !r.var(tmpl->args[1]->args[0], "T1") ||
      !tmpl->args[1]->args[1]->is_nil()) {
    return std::nullopt;
  }
  const TermPtr& goal = so->args[1];  // path(src, dst, Z, T1)
  if (!goal || goal->kind != TermKind::kCompound || goal->args.size() != 4 ||
      goal->args[0]->kind != TermKind::kAtom ||
      goal->args[1]->kind != TermKind::kAtom ||
      !r.var(goal->args[2], "Z") || !r.var(goal->args[3], "T1")) {
    return std::nullopt;
  }
  if (!r.var(so->args[2], "S")) return std::nullopt;
  const TermPtr& mx = c.body[1];  // max(S, [P, T])
  if (!call_shape(mx, "max", 2) || !r.var(mx->args[0], "S")) {
    return std::nullopt;
  }
  const TermPtr& pair = mx->args[1];
  if (!pair || !pair->is_cons() || !r.var(pair->args[0], "P") ||
      !pair->args[1]->is_cons() || !r.var(pair->args[1]->args[0], "T") ||
      !pair->args[1]->args[1]->is_nil()) {
    return std::nullopt;
  }

  PathShape shape;
  shape.functor = functor;
  shape.source = goal->args[0]->text;
  shape.target = goal->args[1]->text;
  const auto& path_clauses = db.clauses_for(goal->text, 4);
  if (path_clauses.size() != 2) return std::nullopt;
  // The base/step clauses may appear in either order; solution order does
  // not matter because setof sorts.
  if (match_path_base(path_clauses[0], goal->text, shape) &&
      match_path_step(path_clauses[1], goal->text, shape)) {
    return shape;
  }
  if (match_path_base(path_clauses[1], goal->text, shape) &&
      match_path_step(path_clauses[0], goal->text, shape)) {
    return shape;
  }
  return std::nullopt;
}

/// Parses one group's facts to homogeneous (task, vid, value) alternatives;
/// nullopt when the group cannot be represented (mixed keys, non-atoms).
std::optional<std::vector<SegmentAlt>> parse_group(
    const wlog::ProbGroup& group, std::string& functor) {
  std::vector<SegmentAlt> alts;
  alts.reserve(group.facts.size());
  for (const TermPtr& fact : group.facts) {
    if (!fact || fact->kind != TermKind::kCompound ||
        fact->args.size() != 3 || !is_ground(fact)) {
      return std::nullopt;
    }
    if (fact->args[0]->kind != TermKind::kAtom ||
        fact->args[1]->kind != TermKind::kAtom) {
      return std::nullopt;
    }
    if (functor.empty()) {
      functor = fact->text;
    } else if (functor != fact->text) {
      return std::nullopt;
    }
    if (!alts.empty() && (alts[0].task != fact->args[0]->text ||
                          alts[0].vid != fact->args[1]->text)) {
      return std::nullopt;  // alternatives must share one (task, vid) key
    }
    alts.push_back(
        SegmentAlt{fact->args[0]->text, fact->args[1]->text, fact->args[2]});
  }
  return alts;
}

}  // namespace

SegmentPlan SegmentPlan::translate(const wlog::ProbProgram& ir,
                                   const wlog::Program& program) {
  SegmentPlan plan;

  // All probabilistic alternatives must be representable, or worlds cannot
  // be replayed outside the engine at all.
  std::string group_functor;
  std::vector<std::vector<SegmentAlt>> groups;
  groups.reserve(ir.groups().size());
  for (const wlog::ProbGroup& group : ir.groups()) {
    auto alts = parse_group(group, group_functor);
    if (!alts) return plan;
    groups.push_back(std::move(*alts));
  }

  // Candidate queries: the goal plus every constraint.
  std::vector<TermPtr> queries;
  if (program.goal) queries.push_back(program.goal->query);
  for (const wlog::ConstraintSpec& cons : program.constraints) {
    queries.push_back(cons.query);
  }
  for (const TermPtr& q : queries) {
    if (!q || q->kind != TermKind::kCompound) continue;
    if (q->args.size() == 1 && !plan.sum_) {
      plan.sum_ = match_sum_shape(ir.base(), q->text);
    } else if (q->args.size() == 2 && !plan.path_) {
      plan.path_ = match_path_shape(ir.base(), q->text);
    }
  }
  if (!plan.any()) return plan;
  plan.groups_ = std::move(groups);
  plan.prob_groups_ = ir.groups();
  plan.group_functor_ = group_functor;
  DECO_OBS_COUNTER_ADD("wlog.vm.segment_translations",
                       (plan.sum_ ? 1 : 0) + (plan.path_ ? 1 : 0));
  return plan;
}

namespace {

/// Reads a fact-only predicate: every clause must be a bodiless compound of
/// the given arity.  Returns false (and the shape must be disabled) when
/// the predicate has rules.
bool read_facts(const wlog::Database& db, const std::string& functor,
                std::size_t arity, std::vector<TermPtr>& out) {
  for (const wlog::Clause& c : db.clauses_for(functor, arity)) {
    if (!c.body.empty() || !c.head ||
        c.head->kind != TermKind::kCompound || c.head->args.size() != arity) {
      return false;
    }
    out.push_back(c.head);
  }
  return true;
}

bool atom_args(const TermPtr& fact, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (fact->args[i]->kind != TermKind::kAtom) return false;
  }
  return true;
}

}  // namespace

SegmentState::SegmentState(const SegmentPlan& plan,
                           const wlog::ProbProgram& bound)
    : plan_(&plan) {
  const wlog::Database& db = bound.base();
  const std::string& group_f = plan.group_functor();

  if (plan.sum()) {
    const SumShape& shape = *plan.sum();
    sum_ok_ = true;
    // A world-varying configs or price table cannot be replayed from the
    // static snapshot below (only the exetime table is layered per world).
    if (!group_f.empty() &&
        (group_f == shape.cfg_f || group_f == shape.price_f)) {
      sum_ok_ = false;
    }
    std::vector<TermPtr> facts;
    if (sum_ok_ && read_facts(db, shape.price_f, 2, facts)) {
      for (const TermPtr& f : facts) {
        if (f->args[0]->kind != TermKind::kAtom) {
          sum_ok_ = false;
          break;
        }
        prices_.push_back(PriceFact{f->args[0]->text, f->args[1]});
      }
    } else {
      sum_ok_ = false;
    }
    facts.clear();
    if (sum_ok_ && read_facts(db, shape.exe_f, 3, facts)) {
      for (const TermPtr& f : facts) {
        if (!atom_args(f, 2)) {
          sum_ok_ = false;
          break;
        }
        exe_static_.push_back(
            SegmentAlt{f->args[0]->text, f->args[1]->text, f->args[2]});
      }
    } else {
      sum_ok_ = false;
    }
    facts.clear();
    if (sum_ok_ && read_facts(db, shape.cfg_f, 3, facts)) {
      for (const TermPtr& f : facts) {
        if (!atom_args(f, 2)) {
          sum_ok_ = false;
          break;
        }
        cfgs_.push_back(
            CfgFact{f->args[0]->text, f->args[1]->text, f->args[2]});
      }
    } else {
      sum_ok_ = false;
    }
  }

  if (plan.path()) {
    const PathShape& shape = *plan.path();
    path_ok_ = true;
    if (!group_f.empty() && group_f == shape.cfg_f) path_ok_ = false;

    auto node_id = [&](const std::string& name) {
      const auto [it, inserted] = node_ids_.try_emplace(name, nodes_.size());
      if (inserted) {
        nodes_.push_back(name);
        children_.emplace_back();
      }
      return it->second;
    };

    std::vector<TermPtr> facts;
    if (path_ok_ && read_facts(db, shape.edge_f, 2, facts)) {
      for (const TermPtr& f : facts) {
        if (!atom_args(f, 2)) {
          path_ok_ = false;
          break;
        }
        const std::size_t from = node_id(f->args[0]->text);
        const std::size_t to = node_id(f->args[1]->text);
        children_[from].push_back(to);
      }
    } else {
      path_ok_ = false;
    }

    // The DP needs an acyclic edge relation (the interpreter would diverge
    // on a cyclic one anyway; refuse rather than guess).
    if (path_ok_) {
      std::vector<char> color(nodes_.size(), 0);  // 0 new, 1 open, 2 done
      for (std::size_t root = 0; root < nodes_.size() && path_ok_; ++root) {
        if (color[root] != 0) continue;
        std::vector<std::pair<std::size_t, std::size_t>> stack{{root, 0}};
        color[root] = 1;
        while (!stack.empty() && path_ok_) {
          auto& [x, next] = stack.back();
          if (next < children_[x].size()) {
            const std::size_t c = children_[x][next++];
            if (color[c] == 1) {
              path_ok_ = false;  // cycle
            } else if (color[c] == 0) {
              color[c] = 1;
              stack.emplace_back(c, 0);
            }
          } else {
            color[x] = 2;
            stack.pop_back();
          }
        }
      }
    }

    // Resolve each node's time source: exactly one (vm, sample) pair may
    // time a task, or the first-proof value would depend on enumeration
    // order in ways the DP does not model.
    if (path_ok_) {
      std::vector<TermPtr> cfg_facts;
      std::vector<TermPtr> exe_facts;
      if (!read_facts(db, shape.cfg_f, 3, cfg_facts) ||
          !read_facts(db, shape.exe_f, 3, exe_facts)) {
        path_ok_ = false;
      }
      if (path_ok_) {
        times_.assign(nodes_.size(), std::nullopt);
        for (std::size_t x = 0; x < nodes_.size() && path_ok_; ++x) {
          std::size_t candidates = 0;
          std::optional<TimeSrc> src;
          for (const TermPtr& cf : cfg_facts) {
            if (!atom_args(cf, 2)) {
              path_ok_ = false;
              break;
            }
            if (cf->args[0]->text != nodes_[x] ||
                !ground_equal(cf->args[2], shape.con_lit)) {
              continue;
            }
            const std::string& vid = cf->args[1]->text;
            for (const TermPtr& ef : exe_facts) {
              if (!atom_args(ef, 2)) {
                path_ok_ = false;
                break;
              }
              if (ef->args[0]->text != nodes_[x] ||
                  ef->args[1]->text != vid) {
                continue;
              }
              ++candidates;
              if (numeric(ef->args[2])) {
                src = TimeSrc{false, ef->args[2]->number(), 0};
              }
            }
            if (group_f == shape.exe_f) {
              const auto& groups = plan.groups();
              for (std::size_t g = 0; g < groups.size(); ++g) {
                if (groups[g].empty() || groups[g][0].task != nodes_[x] ||
                    groups[g][0].vid != vid) {
                  continue;
                }
                ++candidates;
                src = TimeSrc{true, 0, g};
              }
            }
          }
          if (candidates > 1) path_ok_ = false;
          if (candidates == 1) times_[x] = src;
        }
      }
    }

    if (path_ok_) {
      const auto it = node_ids_.find(shape.source);
      if (it != node_ids_.end()) source_id_ = it->second;
    }
  }
}

bool SegmentState::can_answer(const wlog::TermPtr& query,
                              const wlog::TermPtr& variable) const {
  if (!query || query->kind != TermKind::kCompound) return false;
  for (const TermPtr& a : query->args) {
    if (a->kind != TermKind::kVar) return false;
  }
  if (sum_ok_ && plan_->sum() && query->text == plan_->sum()->functor &&
      query->args.size() == 1) {
    return variable == nullptr ||
           (variable->kind == TermKind::kVar &&
            variable->ival == query->args[0]->ival);
  }
  if (path_ok_ && plan_->path() && query->text == plan_->path()->functor &&
      query->args.size() == 2 &&
      query->args[0]->ival != query->args[1]->ival) {
    return variable == nullptr ||
           (variable->kind == TermKind::kVar &&
            variable->ival == query->args[1]->ival);
  }
  return false;
}

bool SegmentState::eval_world(const wlog::TermPtr& query,
                              const std::vector<std::size_t>& chosen,
                              double& out) const {
  if (plan_->sum() && query->text == plan_->sum()->functor) {
    return eval_sum(chosen, out);
  }
  return eval_path(chosen, out);
}

bool SegmentState::eval_sum(const std::vector<std::size_t>& chosen,
                            double& out) const {
  // The interpreter enumerates cost/3 solutions as price x exetime x configs
  // in clause order, with the world's sampled facts appended after the
  // static ones; the += order below reproduces that enumeration, so the
  // accumulated double is bit-identical.
  const auto& groups = plan_->groups();
  const bool layered = plan_->group_functor() == plan_->sum()->exe_f;
  double acc = 0;
  auto add_exe = [&](const PriceFact& p, const SegmentAlt& e) {
    if (e.vid != p.vid) return;
    for (const CfgFact& c : cfgs_) {
      if (c.task != e.task || c.vid != e.vid) continue;
      if (!numeric(p.up) || !numeric(e.value) || !numeric(c.con)) continue;
      // Matches the clause's right-associated `T*(Up*Con)` exactly.
      acc += e.value->number() * (p.up->number() * c.con->number());
    }
  };
  for (const PriceFact& p : prices_) {
    for (const SegmentAlt& e : exe_static_) add_exe(p, e);
    if (layered) {
      for (std::size_t g = 0; g < groups.size(); ++g) {
        if (!groups[g].empty()) add_exe(p, groups[g][chosen[g]]);
      }
    }
  }
  out = acc;
  return true;  // findall + sum always succeed (empty bag sums to 0)
}

bool SegmentState::eval_path(const std::vector<std::size_t>& chosen,
                             double& out) const {
  if (!source_id_) return false;
  const std::string& target = plan_->path()->target;
  const auto& groups = plan_->groups();

  auto world_time = [&](std::size_t x) -> std::optional<double> {
    const std::optional<TimeSrc>& src = times_[x];
    if (!src) return std::nullopt;
    if (!src->from_group) return src->value;
    const SegmentAlt& alt = groups[src->group][chosen[src->group]];
    if (!numeric(alt.value)) return std::nullopt;
    return alt.value->number();
  };

  // Longest source->target distance.  IEEE addition is monotone, so taking
  // the max over children before adding this node's time yields exactly the
  // per-path right-associated sums the interpreter computes.
  std::vector<std::optional<double>> dp(nodes_.size());
  std::vector<char> state(nodes_.size(), 0);  // 0 new, 1 expanded, 2 done
  std::vector<std::size_t> stack{*source_id_};
  while (!stack.empty()) {
    const std::size_t x = stack.back();
    if (state[x] == 0) {
      state[x] = 1;
      for (const std::size_t c : children_[x]) {
        if (nodes_[c] != target && state[c] == 0) stack.push_back(c);
      }
      continue;
    }
    stack.pop_back();
    if (state[x] == 2) continue;
    state[x] = 2;
    const std::optional<double> t = world_time(x);
    if (!t) continue;  // dp[x] stays undefined
    bool has = false;
    double best = 0;
    for (const std::size_t c : children_[x]) {
      double cand = 0;
      if (nodes_[c] == target) {
        cand = 0;  // direct edge: the base clause contributes time(x)
      } else if (dp[c]) {
        cand = *dp[c];
      } else {
        continue;
      }
      if (!has || cand > best) {
        has = true;
        best = cand;
      }
    }
    if (has) dp[x] = *t + best;
  }
  if (!dp[*source_id_]) return false;
  out = *dp[*source_id_];
  return true;
}

std::vector<double> SegmentState::sample_values(
    const wlog::TermPtr& query, const wlog::TermPtr& variable, util::Rng& rng,
    const wlog::McOptions& options) const {
  const auto& groups = plan_->groups();
  std::vector<std::size_t> chosen(groups.size(), 0);
  std::vector<double> values;
  values.reserve(options.max_iterations);
  for (std::size_t i = 0; i < options.max_iterations; ++i) {
    if (options.budget != nullptr) options.budget->checkpoint();
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (groups[g].empty()) continue;
      chosen[g] = wlog::pick_alternative(plan_->prob_group(g), rng.uniform());
    }
    double value = 0;
    if (eval_world(query, chosen, value)) {
      values.push_back(variable != nullptr ? value : 0);
    }
  }
  DECO_OBS_COUNTER_ADD("wlog.vm.segment_worlds", options.max_iterations);
  return values;
}

wlog::McResult SegmentState::eval_goal(const wlog::TermPtr& query,
                                       const wlog::TermPtr& variable,
                                       util::Rng& rng,
                                       const wlog::McOptions& options) const {
  const auto& groups = plan_->groups();
  std::vector<std::size_t> chosen(groups.size(), 0);
  wlog::McResult result;
  result.iterations = options.max_iterations;
  double sum = 0;
  std::size_t proven = 0;
  for (std::size_t i = 0; i < options.max_iterations; ++i) {
    if (options.budget != nullptr) options.budget->checkpoint();
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (groups[g].empty()) continue;
      chosen[g] = wlog::pick_alternative(plan_->prob_group(g), rng.uniform());
    }
    double value = 0;
    if (eval_world(query, chosen, value)) {
      ++proven;
      sum += variable != nullptr ? value : 0;
    }
  }
  result.probability =
      static_cast<double>(proven) /
      static_cast<double>(std::max<std::size_t>(1, options.max_iterations));
  result.value = proven > 0 ? sum / static_cast<double>(proven) : 0;
  DECO_OBS_COUNTER_ADD("wlog.vm.segment_worlds", options.max_iterations);
  return result;
}

}  // namespace deco::core
