#include "core/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/stats.hpp"

namespace deco::core {

PlanEvaluator::PlanEvaluator(const workflow::Workflow& wf,
                             TaskTimeEstimator& estimator,
                             vgpu::ComputeBackend& backend,
                             EvalOptions options)
    : wf_(&wf),
      estimator_(&estimator),
      backend_(&backend),
      options_(options) {
  const auto topo = wf.topological_order();
  topo_ = topo.value_or(std::vector<workflow::TaskId>{});
  parent_offsets_.assign(wf.task_count() + 1, 0);
  for (workflow::TaskId t = 0; t < wf.task_count(); ++t) {
    parent_offsets_[t + 1] = parent_offsets_[t] + wf.parents(t).size();
  }
  parents_.reserve(parent_offsets_.back());
  for (workflow::TaskId t = 0; t < wf.task_count(); ++t) {
    for (workflow::TaskId p : wf.parents(t)) parents_.push_back(p);
  }
}

PlanEvaluator::DevicePlan PlanEvaluator::stage(const sim::Plan& plan) {
  DevicePlan dev;
  const std::size_t n = wf_->task_count();
  dev.bin_offsets.assign(n + 1, 0);
  dev.cpu.resize(n);
  dev.price_per_s.resize(n);
  dev.group.resize(n);
  for (workflow::TaskId t = 0; t < n; ++t) {
    const auto& hist =
        estimator_->dynamic_distribution(*wf_, t, plan[t].vm_type);
    dev.bin_offsets[t + 1] = dev.bin_offsets[t] + hist.bin_count();
    dev.cpu[t] = estimator_->cpu_time(*wf_, t, plan[t].vm_type);
    dev.price_per_s[t] =
        estimator_->catalog().price(plan[t].vm_type, plan[t].region) / 3600.0;
    dev.group[t] = plan[t].group;
    dev.group_slots = std::max(dev.group_slots,
                               static_cast<std::size_t>(plan[t].group + 1));
  }
  dev.centers.reserve(dev.bin_offsets.back());
  dev.cdf.reserve(dev.bin_offsets.back());
  for (workflow::TaskId t = 0; t < n; ++t) {
    const auto& hist =
        estimator_->dynamic_distribution(*wf_, t, plan[t].vm_type);
    dev.centers.insert(dev.centers.end(), hist.centers().begin(),
                       hist.centers().end());
    dev.cdf.insert(dev.cdf.end(), hist.cdf().begin(), hist.cdf().end());
  }
  return dev;
}

PlanEvaluation PlanEvaluator::reduce(std::span<const double> makespans,
                                     std::span<const double> costs,
                                     const ProbDeadline& req) const {
  PlanEvaluation out;
  out.mean_cost = util::mean(costs);
  out.mean_makespan = util::mean(makespans);
  out.makespan_quantile =
      util::percentile(makespans, req.quantile * 100.0);
  std::size_t within = 0;
  const double derated =
      req.deadline_s / std::max(options_.quantile_safety, 1.0);
  for (double m : makespans) {
    if (m <= derated) ++within;
  }
  out.deadline_prob = makespans.empty()
                          ? 0
                          : static_cast<double>(within) /
                                static_cast<double>(makespans.size());
  const double required =
      std::min(req.quantile + options_.feasibility_margin, 1.0);
  out.feasible = out.deadline_prob >= required - 1e-12;
  return out;
}

PlanEvaluation PlanEvaluator::evaluate(const sim::Plan& plan,
                                       const ProbDeadline& req) {
  const sim::Plan* one = &plan;
  return evaluate_batch(std::span<const sim::Plan>(one, 1), req)[0];
}

std::vector<PlanEvaluation> PlanEvaluator::evaluate_batch(
    std::span<const sim::Plan> plans, const ProbDeadline& req) {
  const std::size_t n = wf_->task_count();
  const std::size_t iters = options_.mc_iterations;
  std::vector<PlanEvaluation> results(plans.size());
  if (plans.empty()) return results;
  if (n == 0) {
    for (auto& r : results) {
      r.feasible = true;
      r.deadline_prob = 1;
    }
    return results;
  }

  // Stage all plans on the host (the "global memory" image).  Staging uses
  // the estimator cache and is done serially; kernels then run in parallel.
  std::vector<DevicePlan> staged;
  staged.reserve(plans.size());
  for (const sim::Plan& p : plans) staged.push_back(stage(p));

  // Output arrays: per block, `iters` makespans and costs.
  std::vector<std::vector<double>> makespans(plans.size());
  std::vector<std::vector<double>> costs(plans.size());

  vgpu::LaunchConfig config;
  config.blocks = plans.size();
  config.lanes_per_block = iters;
  config.shared_doubles = 2 * iters;
  config.seed = options_.seed;
  // Seed each block by its plan so a plan's score does not depend on which
  // batch it was evaluated in.
  config.block_seeds.reserve(plans.size());
  for (const sim::Plan& p : plans) {
    std::uint64_t h = 0xcbf29ce484222325ULL ^ options_.seed;
    for (const auto& placement : p.placements) {
      h = (h ^ placement.vm_type) * 0x100000001b3ULL;
      h = (h ^ placement.region) * 0x100000001b3ULL;
      h = (h ^ static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(placement.group) + 9)) *
          0x100000001b3ULL;
    }
    config.block_seeds.push_back(h);
  }

  const CostModel cost_model = options_.cost_model;
  const double interference_cv = options_.interference_cv;
  backend_->launch(config, [&](vgpu::BlockContext& ctx) {
    const DevicePlan& dev = staged[ctx.block_index()];
    auto shared = ctx.shared();
    ctx.for_each_lane([&](std::size_t lane, util::Rng& rng) {
      // One correlated interference factor per possible world: congestion
      // persists across a run, scaling every dynamic component together.
      double interference = 1.0;
      if (interference_cv > 0) {
        interference = std::clamp(util::Normal{1.0, interference_cv}.sample(rng),
                                  1.0 - 3 * interference_cv,
                                  1.0 + 3 * interference_cv);
        interference = std::max(interference, 0.1);
      }
      // Per-lane scratch: sampled durations and finish times.  Tasks in the
      // same instance group serialize on that instance (Merge/CoSchedule
      // semantics), so finish = max(parents, group available) + duration.
      std::vector<double> sampled(n);
      std::vector<double> finish(n);
      std::vector<double> group_avail(dev.group_slots, 0.0);
      for (std::size_t idx = 0; idx < n; ++idx) {
        const workflow::TaskId t = topo_[idx];
        // Inverse-CDF sample of this task's dynamic time.
        const std::size_t lo = dev.bin_offsets[t];
        const std::size_t hi = dev.bin_offsets[t + 1];
        const double u = rng.uniform();
        const auto it = std::upper_bound(dev.cdf.begin() + static_cast<std::ptrdiff_t>(lo),
                                         dev.cdf.begin() + static_cast<std::ptrdiff_t>(hi), u);
        const std::size_t bin = std::min(
            static_cast<std::size_t>(it - dev.cdf.begin()), hi - 1);
        sampled[t] = dev.cpu[t] + dev.centers[bin] / interference;
        double start = 0;
        for (std::size_t e = parent_offsets_[t]; e < parent_offsets_[t + 1];
             ++e) {
          start = std::max(start, finish[parents_[e]]);
        }
        if (dev.group[t] >= 0) {
          auto& avail = group_avail[static_cast<std::size_t>(dev.group[t])];
          start = std::max(start, avail);
          finish[t] = start + sampled[t];
          avail = finish[t];
        } else {
          finish[t] = start + sampled[t];
        }
      }
      const double makespan = *std::max_element(finish.begin(), finish.end());

      double cost = 0;
      if (cost_model == CostModel::kProrated) {
        for (std::size_t t = 0; t < n; ++t) cost += sampled[t] * dev.price_per_s[t];
      } else {
        // Billed hours: tasks in the same group share one instance; ungrouped
        // tasks are billed individually.
        std::unordered_map<std::int32_t, double> group_time;
        std::unordered_map<std::int32_t, double> group_price;
        for (std::size_t t = 0; t < n; ++t) {
          if (dev.group[t] >= 0) {
            group_time[dev.group[t]] += sampled[t];
            group_price[dev.group[t]] = dev.price_per_s[t] * 3600.0;
          } else {
            cost += std::ceil(std::max(sampled[t], 1.0) / 3600.0) *
                    dev.price_per_s[t] * 3600.0;
          }
        }
        for (const auto& [g, time] : group_time) {
          cost += std::ceil(std::max(time, 1.0) / 3600.0) * group_price[g];
        }
      }
      shared[lane] = makespan;
      shared[iters + lane] = cost;
    });
    // Block reduction: copy lane results out for host-side aggregation.
    makespans[ctx.block_index()].assign(shared.begin(),
                                        shared.begin() + static_cast<std::ptrdiff_t>(iters));
    costs[ctx.block_index()].assign(shared.begin() + static_cast<std::ptrdiff_t>(iters),
                                    shared.begin() + static_cast<std::ptrdiff_t>(2 * iters));
  });

  for (std::size_t i = 0; i < plans.size(); ++i) {
    results[i] = reduce(makespans[i], costs[i], req);
  }
  return results;
}

}  // namespace deco::core
