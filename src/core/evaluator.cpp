#include "core/evaluator.hpp"

#include <algorithm>
#include <cmath>

#include "core/analytic_estimator.hpp"
#include "obs/obs.hpp"
#include "util/alias_table.hpp"
#include "util/stats.hpp"

namespace deco::core {

std::optional<EstimatorMode> parse_estimator_mode(std::string_view name) {
  if (name == "mc") return EstimatorMode::kMc;
  if (name == "analytic") return EstimatorMode::kAnalytic;
  if (name == "auto") return EstimatorMode::kAuto;
  return std::nullopt;
}

const char* to_string(EstimatorMode mode) {
  switch (mode) {
    case EstimatorMode::kMc:
      return "mc";
    case EstimatorMode::kAnalytic:
      return "analytic";
    case EstimatorMode::kAuto:
      return "auto";
  }
  return "unknown";
}

PlanEvaluator::~PlanEvaluator() = default;

PlanEvaluator::PlanEvaluator(const workflow::Workflow& wf,
                             TaskTimeEstimator& estimator,
                             vgpu::ComputeBackend& backend,
                             EvalOptions options)
    : wf_(&wf),
      estimator_(&estimator),
      backend_(&backend),
      options_(options) {
  const auto topo = wf.topological_order();
  topo_ = topo.value_or(std::vector<workflow::TaskId>{});
  if (topo_.size() != wf.task_count()) return;  // cyclic: kernel never runs
  // Position-space CSR: entry e of position p is the *position* of a parent
  // of task topo_[p], so the kernel indexes its finish array sequentially.
  std::vector<std::uint32_t> pos_of_task(wf.task_count());
  for (std::size_t p = 0; p < topo_.size(); ++p) {
    pos_of_task[topo_[p]] = static_cast<std::uint32_t>(p);
  }
  parent_offsets_.assign(wf.task_count() + 1, 0);
  for (std::size_t p = 0; p < topo_.size(); ++p) {
    parent_offsets_[p + 1] = parent_offsets_[p] + wf.parents(topo_[p]).size();
  }
  parents_.reserve(parent_offsets_.back());
  for (std::size_t p = 0; p < topo_.size(); ++p) {
    for (workflow::TaskId parent : wf.parents(topo_[p])) {
      parents_.push_back(pos_of_task[parent]);
    }
  }
  sink_.assign(wf.task_count(), 1);
  for (std::uint32_t parent : parents_) sink_[parent] = 0;
}

std::size_t PlanEvaluator::PlanKeyHash::operator()(
    const sim::Plan& plan) const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& placement : plan.placements) {
    h = (h ^ placement.vm_type) * 0x100000001b3ULL;
    h = (h ^ placement.region) * 0x100000001b3ULL;
    h = (h ^ static_cast<std::uint64_t>(
                 static_cast<std::int64_t>(placement.group) + 9)) *
        0x100000001b3ULL;
  }
  return static_cast<std::size_t>(h);
}

void PlanEvaluator::clear_staging_cache() {
  segment_cache_.clear();
  plan_cache_.clear();
  segment_cache_bytes_ = 0;
  plan_cache_bytes_ = 0;
}

std::size_t PlanEvaluator::device_plan_bytes(const DevicePlan& dev) {
  // Array payloads plus a flat allowance for the map node + shared_ptr
  // control block; precise enough to meter the cap, cheap enough to keep on
  // the staging path.
  return dev.bin_offsets.capacity() * sizeof(std::size_t) +
         dev.columns.capacity() * sizeof(AliasColumn) +
         (dev.cpu.capacity() + dev.price_per_s.capacity() +
          dev.price_hour.capacity() + dev.group_price_hour.capacity()) *
             sizeof(double) +
         dev.group.capacity() * sizeof(std::int32_t) +
         dev.group_size.capacity() * sizeof(std::uint32_t) + 160;
}

std::size_t PlanEvaluator::segment_bytes(const TaskSegment& seg) {
  return seg.columns.capacity() * sizeof(AliasColumn) + 96;
}

void PlanEvaluator::enforce_memory_budget() {
  util::BudgetTracker* const budget = budget_;
  if (budget == nullptr || !budget->active()) return;
  using Component = util::BudgetTracker::Component;
  budget->set_bytes(Component::kPlanCache, plan_cache_bytes_);
  budget->set_bytes(Component::kSegmentCache, segment_cache_bytes_);
  if (budget->memory_budget() == 0 || !budget->over_memory_budget()) return;

  // Degradation ladder, cheapest-to-rebuild first.  Eviction is
  // result-neutral: cached entries are pure functions of their keys, so a
  // later re-stage reproduces them bit-identically.
  if (!plan_cache_.empty()) {
    DECO_OBS_COUNTER_ADD("budget.evictions.plan_images", plan_cache_.size());
    plan_cache_.clear();
    plan_cache_bytes_ = 0;
    budget->set_bytes(Component::kPlanCache, 0);
  }
  if (budget->over_memory_budget() && !segment_cache_.empty()) {
    DECO_OBS_COUNTER_ADD("budget.evictions.segments", segment_cache_.size());
    segment_cache_.clear();
    segment_cache_bytes_ = 0;
    budget->set_bytes(Component::kSegmentCache, 0);
  }
  if (!budget->over_memory_budget()) return;
  // Still over: the remaining weight is the search driver's visited set.
  // Ask it to shrink at the next wave boundary; if there is nothing there to
  // shrink either, the ladder is exhausted and the memory trigger fires.
  if (budget->bytes(Component::kVisited) > 0) {
    budget->request_visited_shrink();
  } else {
    budget->fire(util::BudgetTrigger::kMemory);
  }
}

const PlanEvaluator::TaskSegment& PlanEvaluator::segment(
    workflow::TaskId task, cloud::TypeId type) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(task) << 32) | static_cast<std::uint64_t>(type);
  if (const auto it = segment_cache_.find(key); it != segment_cache_.end()) {
    ++cache_stats_.segment_hits;
    DECO_OBS_COUNTER_ADD("eval.cache.segment_hits", 1);
    return it->second;
  }
  ++cache_stats_.segment_misses;
  DECO_OBS_COUNTER_ADD("eval.cache.segment_misses", 1);
  // Single estimator round-trip per (task, type): the histogram is fetched
  // once and flattened into an alias table here; every later plan touching
  // this placement reuses the segment.
  const util::Histogram& hist = estimator_->dynamic_distribution(*wf_, task, type);
  TaskSegment seg;
  const util::AliasTable table(hist.masses());
  const auto centers = hist.centers();
  seg.columns.resize(table.size());
  for (std::size_t k = 0; k < table.size(); ++k) {
    seg.columns[k].prob = table.prob()[k];
    seg.columns[k].stay_center = centers[k];
    seg.columns[k].alias_center = centers[table.alias()[k]];
  }
  seg.cpu = estimator_->cpu_time(*wf_, task, type);
  // Failure-aware staging: stretch the segment by the model's expected
  // retry/straggler/crash inflation at this task's nominal duration.  The
  // kernel and its RNG stream are untouched, so a null model stays
  // bit-identical to the failure-free evaluator, and segments remain
  // cacheable (the model is fixed for the evaluator's lifetime).
  if (options_.failure_model && options_.failure_model->enabled()) {
    const double nominal = seg.cpu + hist.mean();
    const double factor = options_.failure_model->expected_time_factor(nominal);
    seg.cpu *= factor;
    for (AliasColumn& column : seg.columns) {
      column.stay_center *= factor;
      column.alias_center *= factor;
    }
  }
  segment_cache_bytes_ += segment_bytes(seg);
  return segment_cache_.emplace(key, std::move(seg)).first->second;
}

std::shared_ptr<const PlanEvaluator::DevicePlan> PlanEvaluator::stage(
    const sim::Plan& plan) {
  if (const auto it = plan_cache_.find(plan); it != plan_cache_.end()) {
    ++cache_stats_.plan_hits;
    DECO_OBS_COUNTER_ADD("eval.cache.plan_hits", 1);
    return it->second;
  }
  ++cache_stats_.plan_misses;
  DECO_OBS_COUNTER_ADD("eval.cache.plan_misses", 1);

  auto dev = std::make_shared<DevicePlan>();
  const std::size_t n = wf_->task_count();
  dev->bin_offsets.assign(n + 1, 0);
  dev->cpu.resize(n);
  dev->price_per_s.resize(n);
  dev->price_hour.resize(n);
  dev->group.resize(n);
  // All per-position arrays in topological order: position p = task topo_[p].
  for (std::size_t p = 0; p < n; ++p) {
    const workflow::TaskId t = topo_[p];
    const TaskSegment& seg = segment(t, plan[t].vm_type);
    dev->bin_offsets[p + 1] = dev->bin_offsets[p] + seg.columns.size();
    dev->cpu[p] = seg.cpu;
    dev->price_hour[p] =
        estimator_->catalog().price(plan[t].vm_type, plan[t].region);
    dev->price_per_s[p] = dev->price_hour[p] / 3600.0;
    dev->group[p] = plan[t].group;
    dev->group_slots = std::max(dev->group_slots,
                                static_cast<std::size_t>(plan[t].group + 1));
  }
  dev->columns.reserve(dev->bin_offsets.back());
  for (std::size_t p = 0; p < n; ++p) {
    const TaskSegment& seg = segment(topo_[p], plan[topo_[p]].vm_type);
    dev->columns.insert(dev->columns.end(), seg.columns.begin(),
                        seg.columns.end());
  }
  // Per-group billing constants (billed-hours model): the hourly price slot
  // is written in ascending task-id order, so the highest-id member's type
  // wins — matching the pre-cache per-lane map behaviour.
  dev->group_price_hour.assign(dev->group_slots, 0.0);
  dev->group_size.assign(dev->group_slots, 0);
  for (workflow::TaskId t = 0; t < n; ++t) {
    if (plan[t].group >= 0) {
      const auto g = static_cast<std::size_t>(plan[t].group);
      dev->group_price_hour[g] =
          estimator_->catalog().price(plan[t].vm_type, plan[t].region);
      ++dev->group_size[g];
    }
  }

  if (plan_cache_.size() >= kMaxCachedPlans) {
    plan_cache_.clear();
    plan_cache_bytes_ = 0;
  }
  plan_cache_bytes_ += device_plan_bytes(*dev) +
                       plan.placements.size() * sizeof(sim::TaskPlacement);
  plan_cache_.emplace(plan, dev);
  return dev;
}

PlanEvaluation PlanEvaluator::reduce(std::span<const double> makespans,
                                     std::span<const double> costs,
                                     const ProbDeadline& req) const {
  PlanEvaluation out;
  out.mean_cost = util::mean(costs);
  out.mean_makespan = util::mean(makespans);
  out.makespan_quantile =
      util::percentile(makespans, req.quantile * 100.0);
  std::size_t within = 0;
  const double derated =
      req.deadline_s / std::max(options_.quantile_safety, 1.0);
  for (double m : makespans) {
    if (m <= derated) ++within;
  }
  out.deadline_prob = makespans.empty()
                          ? 0
                          : static_cast<double>(within) /
                                static_cast<double>(makespans.size());
  const double required =
      std::min(req.quantile + options_.feasibility_margin, 1.0);
  out.feasible = out.deadline_prob >= required - 1e-12;
  return out;
}

PlanEvaluation PlanEvaluator::evaluate(const sim::Plan& plan,
                                       const ProbDeadline& req) {
  const sim::Plan* one = &plan;
  return evaluate_batch(std::span<const sim::Plan>(one, 1), req)[0];
}

void PlanEvaluator::eval_tile_rows(
    const DevicePlan& dev, bool billed, std::size_t tile, std::size_t lanes,
    std::span<const double> uniforms, std::span<double> finish,
    std::span<const double> inv_inter, std::span<double> start,
    std::span<const double> zero_row, std::span<double> duration,
    std::span<double> makespan_acc, std::span<double> cost_acc,
    std::span<double> group_avail, std::span<double> group_time) const {
  const std::size_t n = wf_->task_count();
  constexpr double kInvHour = 1.0 / 3600.0;
  std::fill(group_avail.begin(), group_avail.end(), 0.0);
  std::fill(group_time.begin(), group_time.end(), 0.0);

  // Evaluation pass (task-major rows over the tile's lanes).
  for (std::size_t p = 0; p < n; ++p) {
    const std::size_t lo = dev.bin_offsets[p];
    const std::size_t bins = dev.bin_offsets[p + 1] - lo;
    const double cpu = dev.cpu[p];
    const double* u_row = uniforms.data() + p * tile;
    double* f_row = finish.data() + p * tile;
    // O(1) alias-table draw per lane: one uniform, one comparison, one
    // contiguous column read (both candidate centers pre-resolved).
    if (bins != 0) {
      const AliasColumn* cols = dev.columns.data() + lo;
      for (std::size_t j = 0; j < lanes; ++j) {
        const double scaled = u_row[j] * static_cast<double>(bins);
        std::size_t col = static_cast<std::size_t>(scaled);
        if (col >= bins) col = bins - 1;  // u ~ 1 after fp rounding
        const AliasColumn& c = cols[col];
        const double center = (scaled - static_cast<double>(col)) < c.prob
                                  ? c.stay_center
                                  : c.alias_center;
        duration[j] = cpu + center * inv_inter[j];
      }
    } else {
      std::fill(duration.begin(), duration.begin() + static_cast<std::ptrdiff_t>(lanes), cpu);
    }
    // start = max over parents' finish rows (position-space CSR).  Roots
    // read a never-written zero row and single-parent tasks read the
    // parent's finish row in place, so only multi-parent tasks pay for a
    // reduction into the start row.
    const std::size_t pb = parent_offsets_[p];
    const std::size_t pe = parent_offsets_[p + 1];
    const double* s_row;
    if (pb == pe) {
      s_row = zero_row.data();
    } else if (pe - pb == 1) {
      s_row = finish.data() + parents_[pb] * tile;
    } else if (pe - pb == 2) {
      const double* r0 = finish.data() + parents_[pb] * tile;
      const double* r1 = finish.data() + parents_[pb + 1] * tile;
      for (std::size_t j = 0; j < lanes; ++j) {
        start[j] = std::max(r0[j], r1[j]);
      }
      s_row = start.data();
    } else {
      const double* parent_row = finish.data() + parents_[pb] * tile;
      std::copy(parent_row, parent_row + lanes, start.begin());
      for (std::size_t e = pb + 1; e < pe; ++e) {
        const double* row = finish.data() + parents_[e] * tile;
        for (std::size_t j = 0; j < lanes; ++j) {
          start[j] = std::max(start[j], row[j]);
        }
      }
      s_row = start.data();
    }
    // Finish, makespan and cost accumulation fused into one row pass per
    // task (same arithmetic per lane as the unfused form, so results are
    // bit-identical — just fewer trips through L1).  Tasks in the same
    // instance group serialize on that instance (Merge/CoSchedule
    // semantics): finish = max(start, avail) + dur.  Cost is Eq. 1
    // prorated, or per-instance ceil-to-hour billing (grouped tasks
    // accumulate shared instance time, billed in the sweep below).
    const std::int32_t g = dev.group[p];
    if (g >= 0) {
      double* avail = group_avail.data() + static_cast<std::size_t>(g) * tile;
      if (!billed) {
        const double price = dev.price_per_s[p];
        for (std::size_t j = 0; j < lanes; ++j) {
          const double d = duration[j];
          const double f = std::max(s_row[j], avail[j]) + d;
          avail[j] = f;
          f_row[j] = f;
          cost_acc[j] += d * price;
        }
      } else {
        double* acc = group_time.data() + static_cast<std::size_t>(g) * tile;
        for (std::size_t j = 0; j < lanes; ++j) {
          const double d = duration[j];
          const double f = std::max(s_row[j], avail[j]) + d;
          avail[j] = f;
          f_row[j] = f;
          acc[j] += d;
        }
      }
    } else if (!billed) {
      const double price = dev.price_per_s[p];
      for (std::size_t j = 0; j < lanes; ++j) {
        const double d = duration[j];
        const double f = s_row[j] + d;
        f_row[j] = f;
        cost_acc[j] += d * price;
      }
    } else {
      const double price_hour = dev.price_hour[p];
      for (std::size_t j = 0; j < lanes; ++j) {
        const double d = duration[j];
        const double f = s_row[j] + d;
        f_row[j] = f;
        cost_acc[j] +=
            std::ceil(std::max(d, 1.0) * kInvHour) * price_hour;
      }
    }
    // Only sink rows can hold the makespan (finish times are monotone
    // along edges), so the accumulator folds those rows alone — same max
    // value, bit for bit, as folding every row.
    if (sink_[p]) {
      for (std::size_t j = 0; j < lanes; ++j) {
        makespan_acc[j] = std::max(makespan_acc[j], f_row[j]);
      }
    }
  }
  if (billed) {
    // Tasks in the same group share one instance, billed by the ceiling
    // of their summed hours; slots unused by this plan stay zero-sized.
    for (std::size_t g = 0; g < dev.group_slots; ++g) {
      if (dev.group_size[g] == 0) continue;
      const double* acc = group_time.data() + g * tile;
      const double price_hour = dev.group_price_hour[g];
      for (std::size_t j = 0; j < lanes; ++j) {
        cost_acc[j] +=
            std::ceil(std::max(acc[j], 1.0) * kInvHour) * price_hour;
      }
    }
  }
}

std::vector<PlanEvaluation> PlanEvaluator::evaluate_batch(
    std::span<const sim::Plan> plans, const ProbDeadline& req) {
  DECO_OBS_SPAN_TIMED("eval", "evaluate_batch", "eval.batch_ms");
  const std::size_t n = wf_->task_count();
  const std::size_t iters = options_.mc_iterations;
  std::vector<PlanEvaluation> results(plans.size());
  if (plans.empty()) return results;
  DECO_OBS_COUNTER_ADD("eval.plans", plans.size());
  DECO_OBS_COUNTER_ADD("eval.task_samples", plans.size() * iters * n);
  if (n == 0) {
    for (auto& r : results) {
      r.feasible = true;
      r.deadline_prob = 1;
    }
    return results;
  }
  // A cyclic workflow has no topological order and no finite makespan.
  if (topo_.size() != n) return results;

  util::BudgetTracker* const budget = budget_;
  enforce_memory_budget();

  // Stage all plans on the host (the "global memory" image).  Staging goes
  // through the two-level cache and is done serially; kernels then run in
  // parallel against the shared read-only images.
  std::vector<std::shared_ptr<const DevicePlan>> staged;
  staged.reserve(plans.size());
  {
    DECO_OBS_SPAN_TIMED("eval", "stage", "eval.stage_ms");
    for (const sim::Plan& p : plans) {
      if (budget != nullptr) budget->checkpoint();
      staged.push_back(stage(p));
    }
  }

  // Output arrays (flat "global memory"): per block, `iters` makespans and
  // costs written by disjoint slices.
  std::vector<double> all_makespans(plans.size() * iters);
  std::vector<double> all_costs(plans.size() * iters);

  vgpu::LaunchConfig config;
  config.blocks = plans.size();
  config.lanes_per_block = iters;
  config.shared_doubles = 2 * iters;
  config.seed = options_.seed;
  config.cancel = budget != nullptr ? budget->launch_cancel() : nullptr;
  // Seed each block by its plan so a plan's score does not depend on which
  // batch it was evaluated in.
  config.block_seeds.reserve(plans.size());
  const PlanKeyHash plan_hash;
  for (const sim::Plan& p : plans) {
    config.block_seeds.push_back(plan_hash(p) ^ options_.seed);
  }

  const CostModel cost_model = options_.cost_model;
  const double interference_cv = options_.interference_cv;
  {
  DECO_OBS_SPAN_TIMED("eval", "kernel", "eval.kernel_ms");
  backend_->launch(config, [&](vgpu::BlockContext& ctx) {
    const DevicePlan& dev = *staged[ctx.block_index()];
    auto shared = ctx.shared();
    const bool billed = cost_model == CostModel::kBilledHours;

    // SIMT-style execution: lanes are processed in tiles of kTileLanes, and
    // within a tile the kernel walks *tasks* in topological position order,
    // applying each step to every lane of the tile (one row at a time).
    // Per-task constants (bin window, CPU time, price, group) are
    // loop-invariant over a row, rows are contiguous, and the only
    // data-dependent branch left per sample is the alias pick, which
    // compiles to a select.  Each lane still consumes its own RNG stream in
    // the same order as a lane-major kernel would (interference factor
    // first, then one uniform per task in topological order), pre-generated
    // into the uniforms matrix, so results are bit-identical regardless of
    // tiling, backend, or batch composition.
    constexpr std::size_t kTileLanes = 128;
    const std::size_t tile = std::min(kTileLanes, iters);
    // Block scratch: uniforms/finish are (n x tile) matrices in row-major
    // task order; everything else is one row.  All borrowed from the
    // context's reusable arena — no heap traffic in steady state.
    auto uniforms = ctx.scratch_doubles(n * tile);
    auto finish = ctx.scratch_doubles(n * tile);
    auto inv_inter = ctx.scratch_doubles(tile);
    auto start = ctx.scratch_doubles(tile);
    auto zero_row = ctx.scratch_doubles(tile);
    auto duration = ctx.scratch_doubles(tile);
    auto makespan_acc = ctx.scratch_doubles(tile);
    auto cost_acc = ctx.scratch_doubles(tile);
    auto group_avail = ctx.scratch_doubles(dev.group_slots * tile);
    auto group_time = ctx.scratch_doubles(dev.group_slots * tile);
    // Root tasks alias this row as their start times; it is never written.
    std::fill(zero_row.begin(), zero_row.end(), 0.0);

    for (std::size_t tile_base = 0; tile_base < iters; tile_base += tile) {
      // Cooperative checkpoint per tile: a fired budget aborts the block via
      // the pool's lowest-block rethrow; a silent budget costs one atomic
      // load + clock read per 128 lanes and changes nothing else.
      if (budget != nullptr) budget->checkpoint();
      const std::size_t lanes = std::min(tile, iters - tile_base);
      // Generation pass (lane-major, RNG state stays in registers),
      // dispatched as one lane batch: one correlated interference factor per
      // possible world — congestion persists across a run, scaling every
      // dynamic component together — then the lane's per-task uniforms,
      // written down its matrix column.
      ctx.run_lanes(tile_base, tile_base + lanes,
                    [&](std::size_t lane_begin, std::size_t lane_end) {
        for (std::size_t lane = lane_begin; lane < lane_end; ++lane) {
          const std::size_t j = lane - tile_base;
          util::Rng rng(ctx.lane_seed(lane));
          double interference = 1.0;
          if (interference_cv > 0) {
            interference =
                std::clamp(util::Normal{1.0, interference_cv}.sample(rng),
                           1.0 - 3 * interference_cv,
                           1.0 + 3 * interference_cv);
            interference = std::max(interference, 0.1);
          }
          inv_inter[j] = 1.0 / interference;
          makespan_acc[j] = 0;
          cost_acc[j] = 0;
          double* column = uniforms.data() + j;
          for (std::size_t p = 0; p < n; ++p) column[p * tile] = rng.uniform();
        }
      });
      eval_tile_rows(dev, billed, tile, lanes, uniforms, finish, inv_inter,
                     start, zero_row, duration, makespan_acc, cost_acc,
                     group_avail, group_time);
      for (std::size_t j = 0; j < lanes; ++j) {
        shared[tile_base + j] = makespan_acc[j];
        shared[iters + tile_base + j] = cost_acc[j];
      }
    }
    // Block reduction: copy lane results to this block's global-memory slice.
    const std::size_t base = ctx.block_index() * iters;
    std::copy(shared.begin(), shared.begin() + static_cast<std::ptrdiff_t>(iters),
              all_makespans.begin() + static_cast<std::ptrdiff_t>(base));
    std::copy(shared.begin() + static_cast<std::ptrdiff_t>(iters),
              shared.begin() + static_cast<std::ptrdiff_t>(2 * iters),
              all_costs.begin() + static_cast<std::ptrdiff_t>(base));
  });
  }

  for (std::size_t i = 0; i < plans.size(); ++i) {
    results[i] = reduce(
        std::span<const double>(all_makespans).subspan(i * iters, iters),
        std::span<const double>(all_costs).subspan(i * iters, iters), req);
  }
  return results;
}

PlanEvaluation PlanEvaluator::verify_full_mc(const sim::Plan& plan,
                                             const ProbDeadline& req) {
  ++screen_stats_.full_mc_verifications;
  DECO_OBS_COUNTER_ADD("eval.screen.full_mc_verifications", 1);
  return evaluate(plan, req);
}

void PlanEvaluator::record_screen_stats(const ScreenStats& delta) {
  screen_stats_.screened += delta.screened;
  screen_stats_.accepted += delta.accepted;
  screen_stats_.rejected += delta.rejected;
  screen_stats_.escalated += delta.escalated;
  screen_stats_.qmc_early_stops += delta.qmc_early_stops;
  screen_stats_.qmc_iterations_used += delta.qmc_iterations_used;
  screen_stats_.qmc_iterations_saved += delta.qmc_iterations_saved;
  DECO_OBS_COUNTER_ADD("eval.screen.accepted", delta.accepted);
  DECO_OBS_COUNTER_ADD("eval.screen.rejected", delta.rejected);
  DECO_OBS_COUNTER_ADD("eval.screen.escalated", delta.escalated);
  DECO_OBS_COUNTER_ADD("eval.qmc.early_stops", delta.qmc_early_stops);
  DECO_OBS_COUNTER_ADD("eval.qmc.iterations", delta.qmc_iterations_used);
  DECO_OBS_COUNTER_ADD("eval.qmc.iterations_saved",
                       delta.qmc_iterations_saved);
}

std::vector<ScreenedEvaluation> PlanEvaluator::evaluate_batch_screened(
    std::span<const sim::Plan> plans, const ProbDeadline& req) {
  std::vector<ScreenedEvaluation> results(plans.size());
  if (plans.empty()) return results;

  // Tier 2 only: delegate wholesale — same kernel, same draws, same reduce,
  // bit-identical to the pre-hierarchy evaluator.
  if (options_.estimator == EstimatorMode::kMc) {
    const auto evals = evaluate_batch(plans, req);
    for (std::size_t i = 0; i < plans.size(); ++i) {
      results[i].eval = evals[i];
      results[i].verdict = ScreenVerdict::kNone;
      results[i].mc_iterations_used = options_.mc_iterations;
    }
    return results;
  }

  if (!analytic_) analytic_ = std::make_unique<AnalyticEstimator>(*this);
  ScreenStats delta;

  if (options_.estimator == EstimatorMode::kAnalytic) {
    // Tier 0 only: every plan answered in closed form; feasibility is the
    // sign of the z margin (no guard band — there is no tier to escalate to).
    for (std::size_t i = 0; i < plans.size(); ++i) {
      const AnalyticScreen s = analytic_->screen(plans[i], req);
      results[i].eval.mean_cost = s.mean_cost;
      results[i].eval.mean_makespan = s.mean_makespan;
      results[i].eval.makespan_quantile = s.makespan_quantile;
      results[i].eval.deadline_prob = s.deadline_prob;
      results[i].eval.feasible = s.z_margin >= 0;
      results[i].verdict = results[i].eval.feasible ? ScreenVerdict::kAccept
                                                    : ScreenVerdict::kReject;
      ++delta.screened;
      ++(results[i].eval.feasible ? delta.accepted : delta.rejected);
    }
    record_screen_stats(delta);
    return results;
  }

  // kAuto: screen everything, escalate only the guard band.  Accepted and
  // rejected plans cost zero sampled worlds; their analytic cost/makespan
  // feed the search ordering directly.
  const double guard = options_.screen_guard_z;
  std::vector<std::size_t> escalated;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const AnalyticScreen s = analytic_->screen(plans[i], req);
    ++delta.screened;
    results[i].eval.mean_cost = s.mean_cost;
    results[i].eval.mean_makespan = s.mean_makespan;
    results[i].eval.makespan_quantile = s.makespan_quantile;
    results[i].eval.deadline_prob = s.deadline_prob;
    if (s.z_margin >= guard) {
      results[i].eval.feasible = true;
      results[i].verdict = ScreenVerdict::kAccept;
      ++delta.accepted;
    } else if (s.z_margin <= -guard) {
      results[i].eval.feasible = false;
      results[i].verdict = ScreenVerdict::kReject;
      ++delta.rejected;
    } else {
      results[i].verdict = ScreenVerdict::kEscalate;
      ++delta.escalated;
      escalated.push_back(i);
    }
  }
  if (!escalated.empty()) {
    std::vector<sim::Plan> subset;
    subset.reserve(escalated.size());
    for (const std::size_t i : escalated) subset.push_back(plans[i]);
    const auto sampled = evaluate_batch_adaptive(subset, req);
    for (std::size_t k = 0; k < escalated.size(); ++k) {
      const std::size_t i = escalated[k];
      results[i].eval = sampled[k].eval;
      results[i].mc_iterations_used = sampled[k].mc_iterations_used;
      results[i].qmc_early_stop = sampled[k].qmc_early_stop;
      delta.qmc_early_stops += sampled[k].qmc_early_stop ? 1 : 0;
      delta.qmc_iterations_used += sampled[k].mc_iterations_used;
      delta.qmc_iterations_saved +=
          options_.mc_iterations - sampled[k].mc_iterations_used;
    }
  }
  record_screen_stats(delta);
  return results;
}

namespace {

/// Wilson score interval for a Bernoulli proportion — well-behaved at the
/// p ~ 1 probabilities deadline queries live at, unlike the Wald interval.
struct WilsonInterval {
  double lower = 0;
  double upper = 1;
};

WilsonInterval wilson_interval(std::size_t successes, std::size_t trials,
                               double z) {
  const double m = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / m;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / m;
  const double center = phat + z2 / (2.0 * m);
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / m + z2 / (4.0 * m * m));
  return {(center - half) / denom, (center + half) / denom};
}

}  // namespace

std::vector<ScreenedEvaluation> PlanEvaluator::evaluate_batch_adaptive(
    std::span<const sim::Plan> plans, const ProbDeadline& req) {
  DECO_OBS_SPAN_TIMED("eval", "qmc_batch", "eval.batch_ms");
  const std::size_t n = wf_->task_count();
  const std::size_t cap = options_.mc_iterations;
  std::vector<ScreenedEvaluation> results(plans.size());
  for (auto& r : results) r.verdict = ScreenVerdict::kEscalate;
  if (plans.empty() || cap == 0) return results;
  DECO_OBS_COUNTER_ADD("eval.plans", plans.size());
  if (n == 0) {
    for (auto& r : results) {
      r.eval.feasible = true;
      r.eval.deadline_prob = 1;
    }
    return results;
  }
  if (topo_.size() != n) return results;  // cyclic: no finite makespan

  // The shared low-discrepancy point set: dimension 0 drives the correlated
  // interference factor, dimension p + 1 the task at topological position p.
  // Built once per workflow size and shared by every plan in every batch, so
  // a plan's QMC score — and its early-stop iteration count — is a pure
  // function of (evaluator seed, plan): identical across backends, worker
  // counts and batch composition.
  if (qmc_points_.dimensions() != n + 1) {
    qmc_points_ =
        util::KroneckerSequence(n + 1, options_.seed ^ 0xC2B2AE3D27D4EB4FULL);
  }

  util::BudgetTracker* const budget = budget_;
  enforce_memory_budget();

  std::vector<std::shared_ptr<const DevicePlan>> staged;
  staged.reserve(plans.size());
  {
    DECO_OBS_SPAN_TIMED("eval", "stage", "eval.stage_ms");
    for (const sim::Plan& p : plans) {
      if (budget != nullptr) budget->checkpoint();
      staged.push_back(stage(p));
    }
  }

  std::vector<double> all_makespans(plans.size() * cap);
  std::vector<double> all_costs(plans.size() * cap);
  std::vector<std::size_t> used(plans.size(), 0);
  std::vector<std::uint8_t> early(plans.size(), 0);

  vgpu::LaunchConfig config;
  config.blocks = plans.size();
  config.lanes_per_block = cap;
  config.shared_doubles = 0;  // lanes write their disjoint global slice
  config.seed = options_.seed;
  config.cancel = budget != nullptr ? budget->launch_cancel() : nullptr;
  config.block_seeds.reserve(plans.size());
  const PlanKeyHash plan_hash;
  for (const sim::Plan& p : plans) {
    config.block_seeds.push_back(plan_hash(p) ^ options_.seed);
  }

  const CostModel cost_model = options_.cost_model;
  const double interference_cv = options_.interference_cv;
  const double required =
      std::min(req.quantile + options_.feasibility_margin, 1.0);
  const double derated =
      req.deadline_s / std::max(options_.quantile_safety, 1.0);
  const double conf_z = options_.qmc_confidence_z;
  const std::size_t min_iters = std::max<std::size_t>(options_.qmc_min_iterations, 1);
  const util::KroneckerSequence& points = qmc_points_;
  {
    DECO_OBS_SPAN_TIMED("eval", "qmc_kernel", "eval.kernel_ms");
    backend_->launch(config, [&](vgpu::BlockContext& ctx) {
      const std::size_t block = ctx.block_index();
      const DevicePlan& dev = *staged[block];
      const bool billed = cost_model == CostModel::kBilledHours;
      const std::size_t tile =
          std::min(std::max<std::size_t>(options_.qmc_batch, 1), cap);
      auto uniforms = ctx.scratch_doubles(n * tile);
      auto finish = ctx.scratch_doubles(n * tile);
      auto inv_inter = ctx.scratch_doubles(tile);
      auto start = ctx.scratch_doubles(tile);
      auto zero_row = ctx.scratch_doubles(tile);
      auto duration = ctx.scratch_doubles(tile);
      auto makespan_acc = ctx.scratch_doubles(tile);
      auto cost_acc = ctx.scratch_doubles(tile);
      auto group_avail = ctx.scratch_doubles(dev.group_slots * tile);
      auto group_time = ctx.scratch_doubles(dev.group_slots * tile);
      std::fill(zero_row.begin(), zero_row.end(), 0.0);

      double* out_mk = all_makespans.data() + block * cap;
      double* out_cost = all_costs.data() + block * cap;
      std::size_t sampled = 0;
      std::size_t within = 0;
      bool stopped = false;
      for (std::size_t base = 0; base < cap && !stopped; base += tile) {
        if (budget != nullptr) budget->checkpoint();
        const std::size_t lanes = std::min(tile, cap - base);
        // Generation pass: low-discrepancy worlds instead of RNG streams.
        // World j's coordinates come straight off the Kronecker sequence —
        // monotone inverse-CDF transport for the interference factor, and
        // the uniform each alias draw consumes for the tasks.
        ctx.run_lanes(base, base + lanes,
                      [&](std::size_t lane_begin, std::size_t lane_end) {
          for (std::size_t lane = lane_begin; lane < lane_end; ++lane) {
            const std::size_t j = lane - base;
            double interference = 1.0;
            if (interference_cv > 0) {
              interference = std::clamp(
                  1.0 + interference_cv *
                            util::normal_quantile(points.point(lane, 0)),
                  1.0 - 3 * interference_cv, 1.0 + 3 * interference_cv);
              interference = std::max(interference, 0.1);
            }
            inv_inter[j] = 1.0 / interference;
            makespan_acc[j] = 0;
            cost_acc[j] = 0;
            double* column = uniforms.data() + j;
            for (std::size_t p = 0; p < n; ++p) {
              column[p * tile] = points.point(lane, p + 1);
            }
          }
        });
        eval_tile_rows(dev, billed, tile, lanes, uniforms, finish, inv_inter,
                       start, zero_row, duration, makespan_acc, cost_acc,
                       group_avail, group_time);
        for (std::size_t j = 0; j < lanes; ++j) {
          out_mk[base + j] = makespan_acc[j];
          out_cost[base + j] = cost_acc[j];
          if (makespan_acc[j] <= derated) ++within;
        }
        sampled += lanes;
        // Sequential confidence bound: stop as soon as the Wilson interval
        // on P(makespan <= deadline) clears (or fails) the requirement.
        // The check runs at fixed chunk boundaries over deterministic
        // per-lane values, so the stopping point is itself deterministic.
        if (sampled >= min_iters && sampled < cap) {
          const auto ci = wilson_interval(within, sampled, conf_z);
          if (ci.lower >= required || ci.upper < required) stopped = true;
        }
      }
      used[block] = sampled;
      early[block] = stopped ? 1 : 0;
    });
  }

  std::size_t total_sampled = 0;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    results[i].eval = reduce(
        std::span<const double>(all_makespans).subspan(i * cap, used[i]),
        std::span<const double>(all_costs).subspan(i * cap, used[i]), req);
    results[i].mc_iterations_used = used[i];
    results[i].qmc_early_stop = early[i] != 0;
    total_sampled += used[i];
  }
  DECO_OBS_COUNTER_ADD("eval.task_samples", total_sampled * n);
  return results;
}

}  // namespace deco::core
