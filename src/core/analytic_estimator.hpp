// Tier 0 of the estimator hierarchy: a closed-form moment-matching screen
// that answers "is this plan's probabilistic deadline clearly met, clearly
// missed, or too close to call?" without sampling a single world.
//
// The screen propagates (mean, variance) of task finish times through the
// same position-space parent CSR the MC kernel walks, using Clark's Gaussian
// max-of-normals approximation at every join:
//
//   finish[p] = max over parents q of finish[q]  +  duration[p]
//
// where duration[p] = cpu[p] + C_p * S, C_p the per-(task, vm-type) dynamic
// time (first two moments read off the staged alias columns — the screen
// shares PlanEvaluator's segment cache, so staging cost is paid once for both
// tiers), and S = 1/I the shared interference speedup.  Because every task in
// one MC world scales by the *same* interference draw, the screen conditions
// on I with a 3-node Gauss-Hermite quadrature over I ~ N(1, cv): propagate
// moments once per node, then mix — this captures the strong positive
// correlation a single global factor induces, which a naive independent-task
// variance sum would miss entirely.
//
// At the sinks a normal is fitted to the mixed makespan moments and the
// deadline query P(makespan <= deadline / quantile_safety) is answered in
// closed form; expected cost comes from the same moments (exactly for
// prorated pricing, via a normal ceil-to-hour survival sum for billed hours).
// The verdict is expressed as a z-space margin so PlanEvaluator can apply its
// guard band: |margin| >= guard accepts/rejects outright, anything inside the
// band escalates to Tier 1 sampling (see docs/performance.md).
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cloud/instance_type.hpp"
#include "sim/plan.hpp"
#include "workflow/dag.hpp"

namespace deco::core {

class PlanEvaluator;
struct ProbDeadline;

/// Closed-form screen result for one (plan, requirement) query.
struct AnalyticScreen {
  double mean_makespan = 0;      ///< E[makespan] under the normal fit, s
  double makespan_quantile = 0;  ///< requirement quantile of the fit, s
  double deadline_prob = 0;      ///< P(makespan <= derated deadline)
  double mean_cost = 0;          ///< expected cost, USD
  /// Feasibility margin in standard-normal z units: z(deadline_prob) minus
  /// z(required quantile).  Positive means the fit clears the requirement;
  /// PlanEvaluator compares |z_margin| against screen_guard_z.
  double z_margin = 0;
};

class AnalyticEstimator {
 public:
  /// Borrows the evaluator (friend access to its staged segments, DAG image
  /// and options); the evaluator owns this object, so lifetimes match.
  explicit AnalyticEstimator(PlanEvaluator& owner);

  /// Screens one plan against a probabilistic deadline.  Allocation-free
  /// after warm-up: per-position scratch is reused across calls and task
  /// moments are cached per (task, vm type) alongside the segment cache.
  AnalyticScreen screen(const sim::Plan& plan, const ProbDeadline& req);

 private:
  /// First two moments of one task's dynamic time on one vm type plus its
  /// constant CPU seconds, read off the staged alias columns (which already
  /// fold in failure inflation).
  struct TaskMoments {
    double mean = 0;  ///< E[C], dynamic component
    double var = 0;   ///< Var[C]
    double cpu = 0;   ///< constant CPU seconds (failure-inflated)
  };

  const TaskMoments& moments(workflow::TaskId task, cloud::TypeId type);

  /// E[ceil(max(X, 1s) / 3600)] for X ~ N(mean, sqrt(var)) — the analytic
  /// billed-hours charge, via the survival sum 1 + sum_k P(X > 3600 k).
  static double expected_billed_hours(double mean, double var);

  PlanEvaluator* owner_;
  std::unordered_map<std::uint64_t, TaskMoments> moment_cache_;

  // Gauss-Hermite nodes for the interference factor I ~ N(1, cv), clamped
  // exactly like the MC kernel clamps its draws; weights {2/3, 1/6, 1/6}.
  std::array<double, 3> i_nodes_{};
  std::array<double, 3> node_weights_{};

  // Per-call scratch, sized to the workflow / group-slot count and reused
  // across calls (capacity sticks, so steady state is allocation-free).
  std::vector<double> fin_mu_;   // finish-time mean per position
  std::vector<double> fin_var_;  // finish-time variance per position
  std::vector<double> dyn_mu_;   // dynamic-time mean per position
  std::vector<double> dyn_var_;  // dynamic-time variance per position
  std::vector<double> cpu_;      // CPU seconds per position
  std::vector<double> price_hour_;  // assigned unit price per position, USD/h
  std::vector<double> avail_mu_;    // per group slot: instance-avail mean
  std::vector<double> avail_var_;
  std::vector<double> gtime_mu_;  // per group slot: summed duration mean
  std::vector<double> gtime_var_;
  std::vector<double> group_price_;       // per group slot, USD/h
  std::vector<std::uint32_t> group_count_;  // members per group slot
};

}  // namespace deco::core
