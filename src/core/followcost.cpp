#include "core/followcost.hpp"

#include <algorithm>
#include <cmath>

#include "workflow/analysis.hpp"

namespace deco::core {
namespace {

constexpr double kGB = 1024.0 * 1024.0 * 1024.0;

std::uint64_t region_vector_hash(const std::vector<cloud::RegionId>& regions) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (cloud::RegionId r : regions) {
    h = (h ^ (r + 1)) * 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

double MigrationWorkflowState::frontier_bytes() const {
  double bytes = 0;
  for (const workflow::Edge& e : wf->edges()) {
    if (finished[e.parent] && !finished[e.child]) bytes += e.bytes;
  }
  return bytes;
}

bool MigrationWorkflowState::done() const {
  return std::all_of(finished.begin(), finished.end(),
                     [](bool f) { return f; });
}

MigrationOptimizer::MigrationOptimizer(const cloud::Catalog& catalog,
                                       TaskTimeEstimator& estimator)
    : catalog_(&catalog), estimator_(&estimator) {}

double MigrationOptimizer::execution_cost(const MigrationWorkflowState& s,
                                          cloud::RegionId region) {
  const double price = catalog_->price(s.vm_type, region) / 3600.0;
  double cost = 0;
  for (workflow::TaskId t = 0; t < s.wf->task_count(); ++t) {
    if (s.finished[t]) continue;
    cost += estimator_->mean_time(*s.wf, t, s.vm_type) * price;
  }
  return cost;
}

double MigrationOptimizer::migration_cost(const MigrationWorkflowState& s,
                                          cloud::RegionId region) const {
  if (region == s.region) return 0;
  return s.frontier_bytes() / kGB * catalog_->egress_price(s.region);
}

double MigrationOptimizer::remaining_time(const MigrationWorkflowState& s,
                                          cloud::RegionId region) {
  // Longest path over unfinished tasks with mean times (finished = weight 0).
  std::vector<double> weights(s.wf->task_count(), 0);
  for (workflow::TaskId t = 0; t < s.wf->task_count(); ++t) {
    if (!s.finished[t]) {
      weights[t] = estimator_->mean_time(*s.wf, t, s.vm_type);
    }
  }
  double time = workflow::critical_path(*s.wf, weights).length;
  if (region != s.region) {
    const double bw_bytes =
        std::max(catalog_->inter_region_net().mean(), 1.0) * 1e6 / 8.0;
    time += s.frontier_bytes() / bw_bytes;
  }
  return time;
}

MigrationDecision MigrationOptimizer::optimize(
    const std::vector<MigrationWorkflowState>& states,
    const SearchOptions& options) {
  MigrationDecision decision;
  const std::size_t n = states.size();
  std::vector<cloud::RegionId> current(n);
  for (std::size_t i = 0; i < n; ++i) current[i] = states[i].region;
  decision.targets = current;
  if (n == 0) return decision;

  // Pre-compute per-workflow per-region cost and feasibility.
  const std::size_t regions = catalog_->region_count();
  std::vector<std::vector<double>> cost(n, std::vector<double>(regions, 0));
  std::vector<std::vector<bool>> feasible(n, std::vector<bool>(regions, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (cloud::RegionId r = 0; r < regions; ++r) {
      cost[i][r] = execution_cost(states[i], r) + migration_cost(states[i], r);
      feasible[i][r] =
          remaining_time(states[i], r) <= states[i].remaining_deadline();
    }
    // Staying put is always allowed even if the deadline is already blown —
    // the least-bad option must exist.
    if (!feasible[i][states[i].region]) {
      bool any = false;
      for (cloud::RegionId r = 0; r < regions; ++r) any = any || feasible[i][r];
      if (!any) feasible[i][states[i].region] = true;
    }
  }

  SearchCallbacks<std::vector<cloud::RegionId>> cb;
  cb.hash = region_vector_hash;
  cb.children = [&](const std::vector<cloud::RegionId>& state) {
    // Flip one workflow's target to any other feasible region.
    std::vector<std::vector<cloud::RegionId>> children;
    for (std::size_t i = 0; i < n; ++i) {
      for (cloud::RegionId r = 0; r < regions; ++r) {
        if (r == state[i] || !feasible[i][r]) continue;
        std::vector<cloud::RegionId> child = state;
        child[i] = r;
        children.push_back(std::move(child));
      }
    }
    return children;
  };
  cb.evaluate = [&](std::span<const std::vector<cloud::RegionId>> batch) {
    std::vector<Scored> out(batch.size());
    for (std::size_t b = 0; b < batch.size(); ++b) {
      double total = 0;
      bool ok = true;
      for (std::size_t i = 0; i < n; ++i) {
        total += cost[i][batch[b][i]];
        ok = ok && feasible[i][batch[b][i]];
      }
      out[b] = Scored{ok, total};
    }
    return out;
  };

  SearchOptions sopt = options;
  sopt.minimize = true;
  if (sopt.max_states == 0) sopt.max_states = 512;
  const auto found = generic_search(current, cb, sopt);
  decision.stats = found.stats;
  if (found.best) {
    decision.targets = *found.best;
    decision.expected_cost = found.best_score.objective;
  }
  return decision;
}

EvacuationPlan choose_evacuation_region(const MigrationWorkflowState& state,
                                        const cloud::Catalog& catalog,
                                        TaskTimeEstimator& estimator,
                                        cloud::RegionId storm_region) {
  MigrationOptimizer optimizer(catalog, estimator);
  EvacuationPlan plan;
  plan.target = state.region;

  // Rank candidate regions by total cost (Eq. 8 execution + Eq. 9 data
  // gravity), feasibility by the remaining static deadline (Eq. 10).  The
  // storm region is not a candidate — that capacity is gone.
  bool have_feasible = false;
  double best_cost = 0;
  double best_time = 0;
  bool have_any = false;
  for (cloud::RegionId r = 0; r < catalog.region_count(); ++r) {
    if (r == storm_region) continue;
    const double cost = optimizer.execution_cost(state, r) +
                        optimizer.migration_cost(state, r);
    const double time = optimizer.remaining_time(state, r);
    const bool feasible = time <= state.remaining_deadline();
    const bool better = !have_any ||
                        (feasible && !have_feasible) ||
                        (feasible == have_feasible &&
                         (feasible ? cost < best_cost : time < best_time));
    if (better) {
      plan.target = r;
      best_cost = cost;
      best_time = time;
      have_feasible = have_feasible || feasible;
      have_any = true;
    }
  }
  plan.moved = have_any && plan.target != state.region;
  plan.execution_cost = optimizer.execution_cost(state, plan.target);
  if (plan.moved) {
    plan.migration_cost = optimizer.migration_cost(state, plan.target);
    const double bw_bytes =
        std::max(catalog.inter_region_net().mean(), 1.0) * 1e6 / 8.0;
    plan.transfer_time_s = state.frontier_bytes() / bw_bytes;
  }
  return plan;
}

FollowCostReport run_followcost_scenario(
    std::vector<MigrationWorkflowState> states, const cloud::Catalog& catalog,
    const MigrationPolicy& policy, util::Rng& rng,
    const FollowCostScenarioOptions& options) {
  FollowCostReport report;
  // Pre-compute per-workflow level structure.
  std::vector<std::vector<int>> levels(states.size());
  std::vector<int> max_level(states.size(), 0);
  for (std::size_t i = 0; i < states.size(); ++i) {
    levels[i] = workflow::levels(*states[i].wf);
    for (int l : levels[i]) max_level[i] = std::max(max_level[i], l);
  }
  std::vector<int> next_level(states.size(), 0);

  auto all_done = [&]() {
    for (const auto& s : states) {
      if (!s.done()) return false;
    }
    return true;
  };

  while (!all_done()) {
    ++report.periods;
    // Ask the policy where each workflow should run this period.
    const std::vector<cloud::RegionId> targets = policy(states);
    for (std::size_t i = 0; i < states.size(); ++i) {
      if (states[i].done() || i >= targets.size()) continue;
      if (targets[i] != states[i].region) {
        report.migration_cost += states[i].frontier_bytes() / kGB *
                                 catalog.egress_price(states[i].region);
        // Transfer time extends the workflow's elapsed clock.
        const double bw =
            cloud::sample_rate(catalog.inter_region_net(), rng) * 1e6 / 8.0;
        states[i].elapsed_s += states[i].frontier_bytes() / bw;
        states[i].region = targets[i];
        ++report.migrations;
      }
    }
    // Execute one batch of levels per workflow with sampled dynamics.
    for (std::size_t i = 0; i < states.size(); ++i) {
      MigrationWorkflowState& s = states[i];
      if (s.done()) continue;
      const int until =
          std::min<int>(next_level[i] + static_cast<int>(options.levels_per_period),
                        max_level[i] + 1);
      const cloud::InstanceType& vm = catalog.type(s.vm_type);
      const double price = catalog.price(s.vm_type, s.region) / 3600.0;
      double level_time = 0;
      for (workflow::TaskId t = 0; t < s.wf->task_count(); ++t) {
        if (s.finished[t] || levels[i][t] >= until) continue;
        // Runtime task time: CPU + I/O with rates sampled from ground truth.
        double time = s.wf->task(t).cpu_seconds /
                      std::max(vm.per_core_units, 0.1);
        const double rate =
            cloud::sample_rate(vm.seq_io_mbps, rng) * 1024.0 * 1024.0;
        time += (s.wf->task(t).input_bytes + s.wf->task(t).output_bytes) / rate;
        report.execution_cost += time * price;
        level_time = std::max(level_time, time);  // level runs in parallel
        s.finished[t] = true;
      }
      s.elapsed_s += level_time;
      next_level[i] = until;
      if (s.done() && s.elapsed_s > s.deadline_s) {
        ++report.deadline_violations;
      }
    }
  }
  report.total_cost = report.execution_cost + report.migration_cost;
  return report;
}

}  // namespace deco::core
