// Use case 2 — workflow ensembles (Section 3.2).
//
// Maximize the total score sum(2^-priority) of completed workflows (Eq. 4)
// subject to an ensemble-wide budget (Eq. 5) and per-workflow probabilistic
// deadlines (Eq. 6).
//
// Implementation per Section 6.3.2: "a state in the search space is
// implemented as an array of boolean values, where each dimension indicates
// whether to execute a workflow in the ensemble.  We enable the A* search by
// specifying the g and h score of a search state s as the Score metric of s.
// Initially, all dimensions are set to false ...  For state transitions, we
// consider executing each of the uncompleted workflows."  Each admitted
// workflow runs under its cheapest deadline-feasible plan found by the
// workflow-scheduling solver (which applies the transformation operations —
// the source of Deco's cost advantage over SPSS).
#pragma once

#include <vector>

#include "core/scheduling.hpp"
#include "sim/ensemble.hpp"
#include "workflow/ensemble.hpp"

namespace deco::core {

struct EnsemblePlanOptions {
  SearchOptions search;
  SchedulingOptions per_workflow;  ///< options for each member's plan search
  /// Sharding for per-member plan scoring — the dominant cost of ensemble
  /// planning is one full scheduling solve per member, and the solves are
  /// independent.  Default (workers 0, no pool) keeps the serial in-place
  /// loop on the planner's shared backend; any sharded configuration fans
  /// the solves over sim::EnsembleRunner, giving each one a *private*
  /// SerialBackend (bit-identical to the shared backend by the vgpu
  /// determinism contract) so concurrent solves never share mutable state.
  /// Sharded and serial scoring choose identical plans, costs and
  /// admissions (tests/sim/ensemble_shard_test.cpp).
  sim::EnsembleOptions exec;
  EnsemblePlanOptions() {
    search.max_states = 4096;
    search.batch_size = 64;
    search.minimize = false;  // maximize score
    per_workflow.search.max_states = 64;
    per_workflow.search.stale_wave_limit = 6;
  }
};

struct EnsemblePlanResult {
  std::vector<bool> admitted;        ///< per member
  std::vector<sim::Plan> plans;      ///< per member (empty if not admitted)
  std::vector<double> member_costs;  ///< expected cost of each member's plan
  double total_cost = 0;             ///< expected cost of admitted members
  double score = 0;                  ///< Eq. 4
  SearchStats stats;
};

class EnsemblePlanner {
 public:
  /// Defaults to the billed-hours cost model: the ensemble budget (Eq. 5)
  /// is spent in real instance hours, which is exactly where the workflow
  /// transformations (Merge / Co-Scheduling packing partial hours) create
  /// Deco's advantage over SPSS.
  EnsemblePlanner(const cloud::Catalog& catalog,
                  const cloud::MetadataStore& store,
                  vgpu::ComputeBackend& backend,
                  EvalOptions eval =
                      [] {
                        EvalOptions e;
                        e.cost_model = CostModel::kBilledHours;
                        return e;
                      }(),
                  EstimatorOptions estimator = {});

  EnsemblePlanResult plan(const workflow::Ensemble& ensemble,
                          const EnsemblePlanOptions& options = {});

 private:
  const cloud::Catalog* catalog_;
  const cloud::MetadataStore* store_;
  vgpu::ComputeBackend* backend_;
  EvalOptions eval_;
  EstimatorOptions estimator_options_;
};

}  // namespace deco::core
