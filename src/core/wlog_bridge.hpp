// Bridge between WLog programs and the engine's metadata (Section 4.2's
// import() machinery plus Section 5.1's probabilistic IR translation).
//
// import(<workflow>) contributes, for a workflow:
//   task(t_i).                      one fact per task (atoms t0, t1, ...)
//   edge(x, y).                     dependency edges, plus virtual root/tail
//   datasize(x, y, Bytes).          transferred bytes per edge
// import(<cloud>) contributes, for the catalog:
//   vm(v_j).                        one fact per instance type
//   price(v_j, UsdPerSecond).       unit price (per second, so that
//                                   C is T*Up*Con matches Eq. 1)
//   region(r_k).                    one fact per catalog region
//   transfer_price(r_a, r_b, Usd).  inter-region egress price per GB
//                                   (the data-gravity term residency and
//                                   failover goals price transfers with)
// and the probabilistic layer:
//   p_b : exetime(t_i, v_j, T_b)    one annotated-disjunction group per
//                                   (task, type) from the estimator histogram
//                                   ("n is determined by the number of bins
//                                   in the performance histogram").
//
// bind_plan asserts the candidate solution's configs(t, v, 1) facts plus
// region(t_i, r_k) placement facts, after which the interpreter can answer
// totalcost/maxtime (and region-residency/failover) queries per world.
#pragma once

#include <span>
#include <string>

#include "core/estimator.hpp"
#include "sim/plan.hpp"
#include "wlog/problog.hpp"
#include "workflow/dag.hpp"
#include "workflow/ensemble.hpp"

namespace deco::core {

struct WlogBridgeOptions {
  std::size_t exetime_bins = 5;  ///< bins per exetime group (IR size control)
  cloud::RegionId region = 0;
};

class WlogBridge {
 public:
  WlogBridge(const workflow::Workflow& wf, TaskTimeEstimator& estimator,
             WlogBridgeOptions options = {});

  /// Builds the probabilistic IR: the program's rules + workflow facts +
  /// cloud facts + exetime groups.
  wlog::ProbProgram build_ir(const wlog::Program& program);

  /// Returns a copy of `ir` with configs facts asserted for `plan`
  /// (including the virtual root/tail tasks, pinned to type 0 with zero
  /// time so they never affect cost or makespan), plus region(t, r) facts
  /// recording each task's placed region.
  wlog::ProbProgram bind_plan(const wlog::ProbProgram& ir,
                              const sim::Plan& plan) const;

  /// Atom names used in the IR.
  static std::string task_atom(workflow::TaskId id);
  static std::string vm_atom(cloud::TypeId id);
  static std::string region_atom(cloud::RegionId id);

  const workflow::Workflow& workflow() const { return *wf_; }

 private:
  const workflow::Workflow* wf_;
  TaskTimeEstimator* estimator_;
  WlogBridgeOptions options_;
};

/// Ensemble facts for declarative workflow-ensemble programs (use case 2):
///   wkf(w_i).  priority(w_i, P).  wfcost(w_i, Cost).  deadline_ok(w_i).
///   budget_limit(B).
/// Costs and deadline feasibility come from each member's cheapest
/// deadline-feasible plan (computed by the scheduling solver).
wlog::ProbProgram build_ensemble_ir(const wlog::Program& program,
                                    const workflow::Ensemble& ensemble,
                                    std::span<const double> member_costs,
                                    const std::vector<bool>& member_feasible);

/// Migration facts for declarative follow-the-cost programs (use case 3):
///   wkf(w_i).  region(r_j).  current(w_i, r_j).
///   exec_cost(w_i, r_j, Usd).   migr_cost(w_i, r_j, Usd).
///   region_ok(w_i, r_j).        (remaining deadline satisfiable there)
/// Derived from the MigrationOptimizer's cost/feasibility model.
wlog::ProbProgram build_migration_ir(
    const wlog::Program& program, const cloud::Catalog& catalog,
    class MigrationOptimizer& optimizer,
    const std::vector<struct MigrationWorkflowState>& states);

}  // namespace deco::core
