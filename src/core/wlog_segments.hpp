// Direct IR-to-segment translation for the canonical scheduling queries.
//
// The declarative solver's hot path evaluates totalcost/maxtime-style
// queries over thousands of sampled worlds.  Even with the bytecode VM,
// proving `totalcost(Ct)` re-runs findall/sum over the same join every
// world, and `maxtime(Path,T)` re-enumerates every root-to-tail path.  This
// module recognizes the paper's canonical rule shapes at solve start and
// compiles them into *segments* — straight-line C++ evaluators over fact
// tables — so per-world evaluation never re-enters a logic engine:
//
//   sum shape      f(Ct) :- findall(C, g(Tid,Vid,C), Bag), sum(Bag, Ct).
//                  g(Tid,Vid,C) :- price(Vid,Up), exetime(Tid,Vid,T),
//                                  configs(Tid,Vid,Con), C is T*Up*Con.
//     -> a triple-nested join over the price/exetime/configs fact tables,
//        accumulated in the interpreter's exact enumeration order (so the
//        floating-point sum is bit-identical);
//
//   path shape     f(P,T) :- setof([Z,T1], path(src,dst,Z,T1), S),
//                            max(S, [P,T]).
//                  path(X,Y,Y,Tp) :- edge(X,Y), exetime(X,V,T),
//                                    configs(X,V,C), C == 1, Tp is T.
//                  path(X,Y,Z,Tp) :- edge(X,Z), Z \== Y, path(Z,Y,Z2,T1),
//                                    exetime(X,V,T), configs(X,V,C),
//                                    C == 1, Tp is T + T1.
//     -> a longest-path DP over the (acyclic) edge relation; IEEE addition
//        is monotone, so max-then-add equals the interpreter's per-path
//        add-then-max exactly.
//
// Recognition is *structural* (variable-bijection matching against the
// clause bodies), with conservative guards: the fact predicates must be
// fact-only, join keys must be atoms, probabilistic groups must be
// homogeneous exetime alternatives, the edge relation must be acyclic, and
// at most one (vm, sample) source may time each task.  Anything that fails
// a guard falls back to the Monte Carlo engine (problog.hpp), which remains
// the behavioural oracle.  RNG consumption matches sample_world exactly —
// one uniform per non-empty group, in group order — so segment and engine
// paths see the same sampled worlds.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"
#include "wlog/problog.hpp"
#include "wlog/program.hpp"

namespace deco::core {

/// A probabilistic alternative parsed to its join key and value.
struct SegmentAlt {
  std::string task;
  std::string vid;
  wlog::TermPtr value;  ///< third argument (usually a number)
};

/// Recognized `findall ... sum` reduce query (totalcost-style).
struct SumShape {
  std::string functor;  ///< query predicate, arity 1
  std::string price_f;  ///< price/2 fact predicate
  std::string exe_f;    ///< exetime/3 fact predicate
  std::string cfg_f;    ///< configs/3 fact predicate
};

/// Recognized `setof ... max` critical-path query (maxtime-style).
struct PathShape {
  std::string functor;  ///< query predicate, arity 2
  std::string edge_f;   ///< edge/2 fact predicate
  std::string exe_f;    ///< exetime/3 fact predicate
  std::string cfg_f;    ///< configs/3 fact predicate
  std::string source;   ///< path start atom (e.g. root)
  std::string target;   ///< path end atom (e.g. tail)
  wlog::TermPtr con_lit;  ///< literal the configs flag is ==-checked against
};

/// Per-solve translation: recognizes the program's goal/constraint queries
/// against the IR's rules.  Immutable once built; shared by every state.
class SegmentPlan {
 public:
  SegmentPlan() = default;

  /// Attempts translation of every query in `program` (goal + constraints)
  /// against the rules and groups in `ir`.  Unrecognized queries are simply
  /// absent from the plan; an empty plan means "always fall back".
  static SegmentPlan translate(const wlog::ProbProgram& ir,
                               const wlog::Program& program);

  bool any() const { return sum_.has_value() || path_.has_value(); }
  const std::optional<SumShape>& sum() const { return sum_; }
  const std::optional<PathShape>& path() const { return path_; }
  /// Parsed group alternatives (one entry per group, same order; empty
  /// groups stay empty and draw no uniform, like sample_world).
  const std::vector<std::vector<SegmentAlt>>& groups() const {
    return groups_;
  }
  /// The raw group (bin masses) backing groups()[g], for pick_alternative.
  const wlog::ProbGroup& prob_group(std::size_t g) const {
    return prob_groups_[g];
  }
  /// Functor shared by every group fact ("" when there are no groups).
  const std::string& group_functor() const { return group_functor_; }

 private:
  std::optional<SumShape> sum_;
  std::optional<PathShape> path_;
  std::vector<std::vector<SegmentAlt>> groups_;
  std::vector<wlog::ProbGroup> prob_groups_;
  std::string group_functor_;
};

/// Per-state fact tables extracted from a bound IR, plus the per-world
/// evaluators.  Construction re-checks the guards against the state's facts
/// (the solver asserts decision facts per state); a failed guard marks the
/// affected shape unavailable and the caller falls back to the MC engine.
class SegmentState {
 public:
  SegmentState(const SegmentPlan& plan, const wlog::ProbProgram& bound);

  /// True when `query` (with result binding `variable`, may be null) can be
  /// answered directly by this state.
  bool can_answer(const wlog::TermPtr& query,
                  const wlog::TermPtr& variable) const;

  /// Mirrors wlog::mc_sample_values, including RNG and budget-checkpoint
  /// behaviour; `variable` may be null (values are then all 0).
  std::vector<double> sample_values(const wlog::TermPtr& query,
                                    const wlog::TermPtr& variable,
                                    util::Rng& rng,
                                    const wlog::McOptions& options) const;

  /// Mirrors wlog::mc_eval_goal.
  wlog::McResult eval_goal(const wlog::TermPtr& query,
                           const wlog::TermPtr& variable, util::Rng& rng,
                           const wlog::McOptions& options) const;

 private:
  struct PriceFact {
    std::string vid;
    wlog::TermPtr up;
  };
  struct CfgFact {
    std::string task;
    std::string vid;
    wlog::TermPtr con;
  };
  /// How a task's time is produced in the path DP: a static fact or the
  /// world-dependent alternative of one group.
  struct TimeSrc {
    bool from_group = false;
    double value = 0;         ///< static time (when !from_group)
    std::size_t group = 0;    ///< group index (when from_group)
  };

  /// One world's value for a recognized query; false when the query fails
  /// in that world (e.g. no feasible path).
  bool eval_world(const wlog::TermPtr& query,
                  const std::vector<std::size_t>& chosen, double& out) const;
  bool eval_sum(const std::vector<std::size_t>& chosen, double& out) const;
  bool eval_path(const std::vector<std::size_t>& chosen, double& out) const;

  const SegmentPlan* plan_;
  bool sum_ok_ = false;
  bool path_ok_ = false;

  // Sum-shape tables (interpreter enumeration order preserved).
  std::vector<PriceFact> prices_;
  std::vector<SegmentAlt> exe_static_;
  std::vector<CfgFact> cfgs_;

  // Path-shape tables.
  std::vector<std::string> nodes_;  ///< first-appearance order
  std::unordered_map<std::string, std::size_t> node_ids_;
  std::vector<std::vector<std::size_t>> children_;
  std::vector<std::optional<TimeSrc>> times_;
  std::optional<std::size_t> source_id_;
};

}  // namespace deco::core
