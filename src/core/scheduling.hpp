// Use case 1 — the workflow scheduling problem (Section 3.1).
//
// Select an instance type per task minimizing the expected monetary cost
// (Eq. 1) subject to a probabilistic deadline (Eq. 3): the p-th percentile of
// the makespan distribution must not exceed D.
//
// Search shape (Fig. 5): the initial state configures every task with the
// cheapest type; children promote tasks to better types.  Children are
// generated for tasks on the *current critical path* (by mean times), which
// keeps the branching factor proportional to the path length; Merge children
// exploit instance partial hours when the billed cost model is active.
#pragma once

#include "core/evaluator.hpp"
#include "core/search.hpp"
#include "core/transform_ops.hpp"

namespace deco::core {

struct SchedulingOptions {
  SearchOptions search;
  bool use_astar = false;        ///< enabled(astar) in WLog
  bool allow_merge = false;      ///< also generate Merge children
  cloud::RegionId region = 0;
  /// Screened modes only: how many of the best screen-feasible states the
  /// Tier 2 full-MC verifier may try when the search winner fails
  /// verification (the screen's answer on frontier plans is an estimate;
  /// the runner-up often verifies where the winner does not).
  std::size_t verify_top_k = 8;
  SchedulingOptions() {
    search.max_states = 2048;
    search.batch_size = 32;
    search.minimize = true;
    search.stale_wave_limit = 24;
  }
};

struct SchedulingResult {
  sim::Plan plan;
  PlanEvaluation evaluation;
  SearchStats stats;
  bool found = false;  ///< a feasible plan was found
  /// Budget outcome (all-zero when options.search.budget was null).  An
  /// exhausted budget still returns a full-size anytime plan — the best
  /// feasible-or-best-screened placement found before the cutoff — with a
  /// valid evaluation (the final single-plan evaluation runs unbudgeted).
  util::SolveReport budget;
};

class SchedulingProblem {
 public:
  SchedulingProblem(const workflow::Workflow& wf, TaskTimeEstimator& estimator,
                    vgpu::ComputeBackend& backend, EvalOptions eval = {});

  SchedulingResult solve(const ProbDeadline& req,
                         const SchedulingOptions& options = {});

  /// The all-cheapest initial plan (Fig. 5's state "0 -> 0").
  sim::Plan initial_plan(cloud::RegionId region = 0) const;

  /// Critical-path tasks of `plan` under mean task times.
  std::vector<workflow::TaskId> critical_tasks(const sim::Plan& plan);

  /// Greedy feasibility pass: promote the slowest critical-path task until
  /// the probabilistic deadline holds (or every task is maxed out).  Used as
  /// the incumbent the search must beat, so tight deadlines on large
  /// workflows always yield a feasible answer.
  SchedulingResult greedy_feasible(const ProbDeadline& req,
                                   cloud::RegionId region = 0);

  /// Cost polish: per task, switch to the cheapest type that is not slower
  /// (feasibility-safe, applied blindly), then greedily try slower-but-
  /// cheaper switches with feasibility re-checks.  Under Eq. 1's prorated
  /// cost the per-task terms are separable, so this is a cheap descent the
  /// transformation search composes with.
  sim::Plan polish(sim::Plan plan, const ProbDeadline& req);

  /// Instance-hour consolidation (the Merge / Move / Co-Scheduling
  /// transformations applied greedily): packs same-(type, region) tasks onto
  /// shared instances — starting from one instance per bucket and doubling
  /// the instance count until the probabilistic deadline holds.  Only
  /// meaningful under CostModel::kBilledHours, where partial hours are the
  /// dominant waste; solve() runs it automatically in that mode.
  sim::Plan consolidate(sim::Plan plan, const ProbDeadline& req);

  PlanEvaluator& evaluator() { return evaluator_; }

 private:
  const workflow::Workflow* wf_;
  TaskTimeEstimator* estimator_;
  PlanEvaluator evaluator_;
};

}  // namespace deco::core
