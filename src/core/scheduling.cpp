#include "core/scheduling.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>

#include "obs/obs.hpp"
#include "workflow/analysis.hpp"

namespace deco::core {

SchedulingProblem::SchedulingProblem(const workflow::Workflow& wf,
                                     TaskTimeEstimator& estimator,
                                     vgpu::ComputeBackend& backend,
                                     EvalOptions eval)
    : wf_(&wf),
      estimator_(&estimator),
      evaluator_(wf, estimator, backend, eval) {}

sim::Plan SchedulingProblem::initial_plan(cloud::RegionId region) const {
  return sim::Plan::uniform(wf_->task_count(), 0, region);
}

std::vector<workflow::TaskId> SchedulingProblem::critical_tasks(
    const sim::Plan& plan) {
  std::vector<double> weights(wf_->task_count());
  for (workflow::TaskId t = 0; t < wf_->task_count(); ++t) {
    weights[t] = estimator_->mean_time(*wf_, t, plan[t].vm_type);
  }
  return workflow::critical_path(*wf_, weights).tasks;
}

sim::Plan SchedulingProblem::polish(sim::Plan plan, const ProbDeadline& req) {
  const cloud::Catalog& catalog = estimator_->catalog();
  const std::size_t n = wf_->task_count();
  if (n == 0) return plan;

  auto task_cost = [&](workflow::TaskId t, cloud::TypeId v,
                       cloud::RegionId region) {
    return estimator_->mean_time(*wf_, t, v) * catalog.price(v, region) /
           3600.0;
  };

  // Pass 1 — cheapest type that is not slower: never hurts the makespan.
  for (workflow::TaskId t = 0; t < n; ++t) {
    const double cur_time = estimator_->mean_time(*wf_, t, plan[t].vm_type);
    cloud::TypeId best = plan[t].vm_type;
    double best_cost = task_cost(t, best, plan[t].region);
    for (cloud::TypeId v = 0; v < catalog.type_count(); ++v) {
      if (estimator_->mean_time(*wf_, t, v) > cur_time) continue;
      const double cost = task_cost(t, v, plan[t].region);
      if (cost < best_cost) {
        best = v;
        best_cost = cost;
      }
    }
    plan[t].vm_type = best;
  }

  // Pass 2 — slower-but-cheaper switches, largest savings first, each
  // verified against the probabilistic deadline (bounded number of evals).
  struct Candidate {
    workflow::TaskId task;
    cloud::TypeId type;
    double saving;
  };
  std::vector<Candidate> candidates;
  for (workflow::TaskId t = 0; t < n; ++t) {
    const double cur_cost = task_cost(t, plan[t].vm_type, plan[t].region);
    cloud::TypeId best = plan[t].vm_type;
    double best_cost = cur_cost;
    for (cloud::TypeId v = 0; v < catalog.type_count(); ++v) {
      const double cost = task_cost(t, v, plan[t].region);
      if (cost < best_cost) {
        best = v;
        best_cost = cost;
      }
    }
    if (best != plan[t].vm_type) {
      candidates.push_back(Candidate{t, best, cur_cost - best_cost});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.saving > b.saving;
            });
  // Try accepting all, then halve the accepted prefix until feasible.
  std::size_t accept = candidates.size();
  constexpr int kMaxEvals = 8;
  for (int evals = 0; accept > 0 && evals < kMaxEvals; ++evals) {
    sim::Plan trial = plan;
    for (std::size_t i = 0; i < accept; ++i) {
      trial[candidates[i].task].vm_type = candidates[i].type;
    }
    if (evaluator_.evaluate(trial, req).feasible) {
      plan = std::move(trial);
      break;
    }
    accept /= 2;
  }
  return plan;
}

sim::Plan SchedulingProblem::consolidate(sim::Plan plan,
                                         const ProbDeadline& req) {
  const std::size_t n = wf_->task_count();
  if (n == 0) return plan;
  const auto topo = wf_->topological_order();
  if (!topo) return plan;

  // Bucket tasks by (type, region) in topological order.
  std::map<std::pair<cloud::TypeId, cloud::RegionId>,
           std::vector<workflow::TaskId>>
      buckets;
  for (workflow::TaskId t : *topo) {
    buckets[{plan[t].vm_type, plan[t].region}].push_back(t);
  }
  std::size_t largest = 0;
  for (const auto& [key, tasks] : buckets) {
    largest = std::max(largest, tasks.size());
  }

  const double unpacked_cost = evaluator_.evaluate(plan, req).mean_cost;
  for (std::size_t instances = 1; instances <= largest; instances *= 2) {
    sim::Plan trial = plan;
    std::int32_t next_group = 0;
    for (const auto& [key, tasks] : buckets) {
      const auto k = std::min(instances, tasks.size());
      const std::int32_t base = next_group;
      next_group += static_cast<std::int32_t>(k);
      // Round-robin so parallel stages spread across the k instances.
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        trial[tasks[i]].group = base + static_cast<std::int32_t>(i % k);
      }
    }
    const PlanEvaluation eval = evaluator_.evaluate(trial, req);
    if (eval.feasible) {
      return eval.mean_cost < unpacked_cost ? trial : plan;
    }
  }
  return plan;
}

SchedulingResult SchedulingProblem::greedy_feasible(const ProbDeadline& req,
                                                    cloud::RegionId region) {
  SchedulingResult result;
  const cloud::Catalog& catalog = estimator_->catalog();
  // Screened modes run the promotion loop on the cheap estimator tiers and
  // confirm every screen-feasible plan with the Tier 2 verifier before the
  // loop trusts it (a failed confirmation just keeps promoting); kMc keeps
  // the historical full-MC loop bit-identical.
  const bool screened = evaluator_.options().estimator != EstimatorMode::kMc;
  auto score = [&](const sim::Plan& p) {
    if (!screened) return evaluator_.evaluate(p, req);
    const sim::Plan* one = &p;
    return evaluator_
        .evaluate_batch_screened(std::span<const sim::Plan>(one, 1), req)[0]
        .eval;
  };
  sim::Plan plan = initial_plan(region);
  PlanEvaluation eval{};
  std::size_t iterations = 0;
  // The whole promotion loop is one budget scope: a budget firing mid-loop
  // keeps the last promoted plan as the anytime answer (always full-size;
  // found stays false because the loop only runs while infeasible).
  try {
  eval = score(plan);
  if (screened && eval.feasible) eval = evaluator_.verify_full_mc(plan, req);
  const std::size_t max_iterations = wf_->task_count() * catalog.type_count();
  while (!eval.feasible && iterations++ < max_iterations) {
    // Promote the critical-path task with the largest mean time that still
    // has headroom.
    const auto cp = critical_tasks(plan);
    workflow::TaskId best = workflow::kInvalidTask;
    double best_time = -1;
    for (workflow::TaskId t : cp) {
      if (plan[t].vm_type + 1 >= catalog.type_count()) continue;
      const double mt = estimator_->mean_time(*wf_, t, plan[t].vm_type);
      if (mt > best_time) {
        best_time = mt;
        best = t;
      }
    }
    if (best == workflow::kInvalidTask) {
      // The mean critical path is maxed but the quantile still violates the
      // deadline: promote the slowest promotable task anywhere.
      for (workflow::TaskId t = 0; t < wf_->task_count(); ++t) {
        if (plan[t].vm_type + 1 >= catalog.type_count()) continue;
        const double mt = estimator_->mean_time(*wf_, t, plan[t].vm_type);
        if (mt > best_time) {
          best_time = mt;
          best = t;
        }
      }
    }
    if (best == workflow::kInvalidTask) break;  // everything is maxed
    ++plan[best].vm_type;
    eval = score(plan);
    if (screened && eval.feasible) eval = evaluator_.verify_full_mc(plan, req);
  }
  } catch (const util::BudgetExhaustedError&) {
    // Anytime cut: the plan holds the promotions made so far and eval the
    // last completed score.
  }
  result.plan = std::move(plan);
  result.evaluation = eval;
  result.found = eval.feasible;
  result.stats.states_evaluated = iterations + 1;
  return result;
}

SchedulingResult SchedulingProblem::solve(const ProbDeadline& req,
                                          const SchedulingOptions& options) {
  SchedulingResult result;
  if (wf_->task_count() == 0) {
    result.found = true;
    result.evaluation.feasible = true;
    return result;
  }
  const cloud::Catalog& catalog = estimator_->catalog();

  // Arm the evaluator with this solve's budget for the duration of the call
  // (exception-safe; the recursive screened fallback re-arms identically).
  util::BudgetTracker* const budget = options.search.budget;
  struct BudgetScope {
    PlanEvaluator& evaluator;
    util::BudgetTracker* prev;
    ~BudgetScope() { evaluator.set_budget(prev); }
  } budget_scope{evaluator_, evaluator_.budget()};
  evaluator_.set_budget(budget);

  SearchCallbacks<sim::Plan> cb;
  cb.hash = plan_hash;
  cb.children = [this, &catalog, &options](const sim::Plan& plan) {
    TransformOptions topt;
    topt.focus_tasks = critical_tasks(plan);
    std::vector<TransformOp> ops{TransformOp::kPromote};
    if (options.allow_merge) ops.push_back(TransformOp::kMerge);
    return generate_children(plan, *wf_, catalog, ops, topt);
  };
  // In screened modes the search wave is scored by the estimator hierarchy:
  // analytic accepts/rejects cost zero sampled worlds, the guard band runs
  // adaptive QMC, and each analytic rejection is a pruned state (the math
  // discarded it before any sampling — the counter the `search.states_pruned`
  // metric reports).  kMc keeps the historical full-MC wave bit-identical.
  const bool screened = evaluator_.options().estimator != EstimatorMode::kMc;
  std::atomic<std::size_t> screen_rejections{0};
  // Screen-feasible states, kept so Tier 2 can fall back to the runner-ups
  // if the search winner fails full-MC verification.  cb.evaluate may run on
  // the pipelined driver's evaluation thread, hence the mutex.
  struct Candidate {
    double objective;
    std::uint64_t hash;
    sim::Plan plan;
  };
  std::mutex candidates_mu;
  std::vector<Candidate> candidates;
  const std::size_t top_k = options.verify_top_k;
  cb.evaluate = [this, &req, screened, &screen_rejections, &candidates_mu,
                 &candidates, top_k](std::span<const sim::Plan> plans) {
    std::vector<Scored> scores(plans.size());
    if (!screened) {
      const auto evals = evaluator_.evaluate_batch(plans, req);
      for (std::size_t i = 0; i < evals.size(); ++i) {
        scores[i] = Scored{evals[i].feasible, evals[i].mean_cost};
      }
      return scores;
    }
    const auto evals = evaluator_.evaluate_batch_screened(plans, req);
    std::size_t rejected = 0;
    for (std::size_t i = 0; i < evals.size(); ++i) {
      scores[i] = Scored{evals[i].eval.feasible, evals[i].eval.mean_cost};
      if (evals[i].verdict == ScreenVerdict::kReject) ++rejected;
    }
    if (top_k > 0) {
      std::lock_guard<std::mutex> lock(candidates_mu);
      for (std::size_t i = 0; i < evals.size(); ++i) {
        if (!evals[i].eval.feasible) continue;
        candidates.push_back(Candidate{evals[i].eval.mean_cost,
                                       plan_hash(plans[i]), plans[i]});
      }
      // Keep the list bounded: cheapest-first, hash tie-break so the order
      // (and therefore the fallback choice) is independent of wave timing.
      if (candidates.size() > 4 * top_k) {
        std::sort(candidates.begin(), candidates.end(),
                  [](const Candidate& a, const Candidate& b) {
                    return a.objective != b.objective
                               ? a.objective < b.objective
                               : a.hash < b.hash;
                  });
        candidates.resize(top_k);
      }
    }
    if (rejected != 0) {
      screen_rejections.fetch_add(rejected, std::memory_order_relaxed);
      DECO_OBS_COUNTER_ADD("search.states_pruned", rejected);
    }
    return scores;
  };

  SearchOptions sopt = options.search;
  sopt.minimize = true;
  SearchResult<sim::Plan> found;
  if (options.use_astar) {
    // g = h = estimated monetary cost of the state (Section 5.3's example).
    auto cost_estimate = [this](const sim::Plan& plan) {
      double cost = 0;
      for (workflow::TaskId t = 0; t < wf_->task_count(); ++t) {
        cost += estimator_->mean_time(*wf_, t, plan[t].vm_type) *
                estimator_->catalog().price(plan[t].vm_type, plan[t].region) /
                3600.0;
      }
      return cost;
    };
    cb.g_score = cost_estimate;
    cb.h_score = [](const sim::Plan&) { return 0.0; };
    sopt.monotone_objective = true;
    found = astar_search(initial_plan(options.region), cb, sopt);
  } else {
    found = generic_search(initial_plan(options.region), cb, sopt);
  }

  result.stats = found.stats;
  result.stats.states_pruned += screen_rejections.load();
  result.budget = found.budget;
  // Tier 2 on the search outcome: the search ran on screened scores, so the
  // candidate must survive the full-MC verifier before it competes with the
  // greedy incumbent (and competes on its verified, not screened, cost).
  // If the winner fails, try the top-K screen-feasible runner-ups in
  // cheapest-first order — screened scores on frontier plans are estimates,
  // and the next-best state often verifies where the winner does not.
  if (screened && found.best) {
    try {
    const PlanEvaluation verified = evaluator_.verify_full_mc(*found.best, req);
    if (verified.feasible) {
      found.best_score.objective = verified.mean_cost;
    } else {
      found.best.reset();
      std::sort(candidates.begin(), candidates.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.objective != b.objective ? a.objective < b.objective
                                                    : a.hash < b.hash;
                });
      std::size_t tried = 0;
      std::uint64_t last_hash = 0;
      bool have_last = false;
      for (const Candidate& c : candidates) {
        if (tried >= top_k) break;
        if (have_last && c.hash == last_hash) continue;  // dedup re-visits
        last_hash = c.hash;
        have_last = true;
        ++tried;
        const PlanEvaluation v = evaluator_.verify_full_mc(c.plan, req);
        if (v.feasible) {
          found.best = c.plan;
          found.best_score = Scored{true, v.mean_cost};
          break;
        }
      }
    }
    } catch (const util::BudgetExhaustedError&) {
      // Budget fired mid-verification: whatever survives in found.best (the
      // screened winner, or nothing if it already failed full MC) carries on
      // as the anytime candidate — the exhausted-solve contract is feasible-
      // or-best-screened, not fully verified.
    }
  }
  // The search competes with the greedy incumbent; take the cheaper feasible.
  SchedulingResult greedy = greedy_feasible(req, options.region);
  result.stats.states_evaluated += greedy.stats.states_evaluated;
  if (found.best &&
      (!greedy.found || found.best_score.objective <=
                            greedy.evaluation.mean_cost)) {
    result.found = true;
    result.plan = *found.best;
  } else {
    result.found = greedy.found;
    result.plan = std::move(greedy.plan);
  }
  // Correctness net: when the screened pipeline finds nothing feasible, rerun
  // the reference full-MC solve before giving up.  Near-frontier instances
  // can have every candidate sit where the cheap tiers' verdicts flip
  // against full MC; the fallback makes `auto` return exactly what `mc`
  // would (bit-identical — same seed, same kernel), at worst doubling the
  // cost of the rare solve that was about to fail anyway.
  const bool exhausted = budget != nullptr && budget->exhausted();
  if (screened && !result.found && !exhausted) {
    DECO_OBS_COUNTER_ADD("search.screen_fallbacks", 1);
    const EstimatorMode saved = evaluator_.options().estimator;
    evaluator_.set_estimator_mode(EstimatorMode::kMc);
    SchedulingResult fallback = solve(req, options);
    evaluator_.set_estimator_mode(saved);
    fallback.stats.states_evaluated += result.stats.states_evaluated;
    fallback.stats.states_pruned += result.stats.states_pruned;
    if (budget != nullptr) {
      fallback.budget = budget->report(fallback.stats.states_evaluated);
    }
    return fallback;
  }
  if (result.found && !exhausted) {
    // Polish and consolidation refine an already-valid plan; under an
    // exhausted budget they are skipped (their evaluations would abort
    // immediately anyway), and a budget firing inside them keeps the
    // pre-refinement plan.
    try {
      sim::Plan refined = polish(result.plan, req);
      if (evaluator_.options().cost_model == CostModel::kBilledHours) {
        refined = consolidate(std::move(refined), req);
      }
      result.plan = std::move(refined);
    } catch (const util::BudgetExhaustedError&) {
    }
  }
  // The final evaluation always completes — one plan, bounded work — so even
  // an anytime result reports a real score; the budget is detached for it.
  evaluator_.set_budget(nullptr);
  result.evaluation = evaluator_.evaluate(result.plan, req);
  if (budget != nullptr) {
    result.budget = budget->report(result.stats.states_evaluated);
  }
  return result;
}

}  // namespace deco::core
