// Use case 3 — follow-the-cost: dynamic workflow migration across clouds
// (Section 3.3).
//
// Multiple workflows run across cloud regions with different prices; at
// runtime, partially executed workflows may migrate to a cheaper region, at
// the price of transferring the intermediate data their unfinished tasks
// need (Eqs. 7-10).  Deadlines use the traditional *static* notion here
// (expected times), since this is an online optimization.
//
// The module provides:
//   * MigrationOptimizer — Deco's generic search over per-workflow target
//     regions, minimizing remaining execution + migration cost subject to
//     each workflow's remaining deadline;
//   * run_followcost_scenario — the runtime driver: executes the workflow
//     set level-by-level on the simulator, invoking a migration policy
//     between periods, and accounting execution + transfer cost.  Policies:
//     Deco (re-optimize each period) or the Heuristic baseline (offline plan
//     + threshold-triggered adjustment, Section 6.1).
#pragma once

#include <functional>
#include <vector>

#include "core/estimator.hpp"
#include "core/search.hpp"
#include "util/rng.hpp"
#include "vgpu/device.hpp"
#include "workflow/dag.hpp"

namespace deco::core {

/// Runtime state of one workflow in the migration scenario.
struct MigrationWorkflowState {
  const workflow::Workflow* wf = nullptr;
  std::vector<bool> finished;     ///< per task
  cloud::RegionId region = 0;     ///< where unfinished tasks currently sit
  cloud::TypeId vm_type = 1;      ///< instance type used by this workflow
  double elapsed_s = 0;           ///< time consumed so far
  double deadline_s = 0;          ///< total deadline

  double remaining_deadline() const { return deadline_s - elapsed_s; }
  /// Bytes that must cross regions if the workflow migrates now: data on
  /// finished->unfinished edges (the frontier's inputs).
  double frontier_bytes() const;
  bool done() const;
};

struct MigrationDecision {
  std::vector<cloud::RegionId> targets;  ///< per workflow
  double expected_cost = 0;              ///< Eq. 7 estimate
  SearchStats stats;
};

class MigrationOptimizer {
 public:
  MigrationOptimizer(const cloud::Catalog& catalog,
                     TaskTimeEstimator& estimator);

  /// Chooses a target region per workflow minimizing remaining execution +
  /// migration cost subject to each workflow's remaining (static) deadline.
  MigrationDecision optimize(const std::vector<MigrationWorkflowState>& states,
                             const SearchOptions& options = {});

  /// Expected remaining execution cost of one workflow in `region` (Eq. 8).
  double execution_cost(const MigrationWorkflowState& s,
                        cloud::RegionId region);
  /// Migration cost if `s` moves to `region` (Eq. 9; zero if staying).
  double migration_cost(const MigrationWorkflowState& s,
                        cloud::RegionId region) const;
  /// Expected remaining makespan in `region`, including migration transfer
  /// time (the left side of Eq. 10).
  double remaining_time(const MigrationWorkflowState& s,
                        cloud::RegionId region);

 private:
  const cloud::Catalog* catalog_;
  TaskTimeEstimator* estimator_;
};

/// Where a storm-driven evacuation should send the residual workflow, and
/// what the move costs (data gravity: the frontier's bytes must follow).
struct EvacuationPlan {
  cloud::RegionId target = 0;   ///< chosen region (== current when staying)
  bool moved = false;           ///< target differs from the current region
  double migration_cost = 0;    ///< Eq. 9 egress cost of the frontier, USD
  double transfer_time_s = 0;   ///< frontier over mean inter-region bandwidth
  double execution_cost = 0;    ///< Eq. 8 remaining execution cost at target
};

/// Picks the failover region for a residual workflow whose current region
/// `storm_region` is under a storm: the cheapest region (remaining
/// execution + data-gravity migration cost, Eqs. 8/9) that still meets the
/// remaining deadline (Eq. 10), storm region excluded.  Falls back to the
/// fastest non-storm region when none is feasible, and stays put when the
/// catalog has nowhere else to go.
EvacuationPlan choose_evacuation_region(const MigrationWorkflowState& state,
                                        const cloud::Catalog& catalog,
                                        TaskTimeEstimator& estimator,
                                        cloud::RegionId storm_region);

/// Migration policy invoked between execution periods.
using MigrationPolicy = std::function<std::vector<cloud::RegionId>(
    const std::vector<MigrationWorkflowState>&)>;

struct FollowCostReport {
  double execution_cost = 0;
  double migration_cost = 0;
  double total_cost = 0;
  std::size_t migrations = 0;
  std::size_t periods = 0;
  std::size_t deadline_violations = 0;
};

struct FollowCostScenarioOptions {
  std::size_t levels_per_period = 1;  ///< DAG levels executed per period
  std::uint64_t seed = 11;
};

/// Runs the online scenario: executes all workflows level-by-level with
/// dynamics sampled from the catalog's ground truth, calling `policy` before
/// each period and accounting costs at the regions then in force.
FollowCostReport run_followcost_scenario(
    std::vector<MigrationWorkflowState> states, const cloud::Catalog& catalog,
    const MigrationPolicy& policy, util::Rng& rng,
    const FollowCostScenarioOptions& options = {});

}  // namespace deco::core
