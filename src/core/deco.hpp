// Deco — the declarative optimization engine (the paper's primary
// contribution, Figure 3).
//
// The engine offers two entry levels:
//   * solve_program(): the declarative path.  A WLog program (goal /
//     constraints / variables + rules) is parsed, translated to the
//     probabilistic IR with facts imported from the engine's workflow and
//     cloud metadata, and solved by the generic/A* search, evaluating every
//     candidate state through Monte Carlo inference over the IR
//     (Algorithms 1 and 2).  This is the faithful pipeline — and, like the
//     paper says, evaluation through the interpreter is the expensive part,
//     which is why the engine batches states onto the parallel backend.
//   * schedule() / plan_ensemble() / optimize_migration(): the native paths
//     for the three use cases, which compile the same optimization to direct
//     evaluation (the moral equivalent of the paper's GPU kernels).  Benches
//     and the WMS integration use these.
#pragma once

#include <memory>
#include <string>

#include "core/declarative.hpp"
#include "core/ensemble_planner.hpp"
#include "core/followcost.hpp"
#include "core/scheduling.hpp"
#include "core/wlog_bridge.hpp"

namespace deco::core {

struct DecoOptions {
  std::string backend = "vgpu";  ///< "vgpu" | "serial"
  std::size_t backend_workers = 0;
  EvalOptions eval;
  /// Ensembles optimize hour-billed budgets (Eq. 5 spends real instance
  /// hours), so their evaluator defaults to the billed cost model — this is
  /// where the Merge/Co-Scheduling transformations pay off against SPSS.
  EvalOptions ensemble_eval = [] {
    EvalOptions e;
    e.cost_model = CostModel::kBilledHours;
    return e;
  }();
  EstimatorOptions estimator;
  /// Search budget for the declarative path (interpreter evaluation is
  /// costly, so this is much smaller than the native budgets).
  std::size_t wlog_max_states = 48;
  std::size_t wlog_mc_iterations = 48;
  /// WLog engine for the declarative paths: "vm" (default) runs the
  /// compiled bytecode VM, "interp" the tree-walking oracle.
  std::string wlog_exec = "vm";
  /// Direct IR-to-segment translation of recognized totalcost/maxtime
  /// query shapes (falls back to the engine when a shape doesn't match).
  bool wlog_segments = true;
  /// Optional cooperative solve budget for the declarative paths
  /// (solve_program / solve_ensemble_program).  Native paths take the budget
  /// through their per-call options (SearchOptions::budget).
  util::BudgetTracker* budget = nullptr;
};

struct WlogSolveResult {
  bool ok = false;
  std::string error;
  sim::Plan plan;
  double goal_value = 0;
  bool feasible = false;
  SearchStats stats;
  /// Budget outcome (all-zero when DecoOptions::budget was null).
  util::SolveReport budget;
};

/// Result of a declarative *ensemble* program (use case 2 in WLog).
struct WlogEnsembleResult {
  bool ok = false;
  std::string error;
  std::vector<bool> admitted;
  std::vector<sim::Plan> plans;  ///< per member; empty when not admitted
  double goal_value = 0;         ///< the program's goal (e.g. total score)
  bool feasible = false;
  SearchStats stats;
};

class Deco {
 public:
  Deco(const cloud::Catalog& catalog, const cloud::MetadataStore& store,
       DecoOptions options = {});

  /// Declarative path: solve a WLog program against `wf`.
  WlogSolveResult solve_program(const std::string& source,
                                const workflow::Workflow& wf);

  /// Declarative path for workflow ensembles: the program declares
  /// `var execute(W, Run) forall wkf(W).` and optimizes over the
  /// wkf/priority/wfcost/deadline_ok/budget_limit facts the engine derives
  /// from the ensemble (per-member plans come from the scheduling solver).
  WlogEnsembleResult solve_ensemble_program(const std::string& source,
                                            const workflow::Ensemble& ensemble);

  /// Native use-case paths.
  SchedulingResult schedule(const workflow::Workflow& wf,
                            const ProbDeadline& req,
                            const SchedulingOptions& options = {});
  EnsemblePlanResult plan_ensemble(const workflow::Ensemble& ensemble,
                                   const EnsemblePlanOptions& options = {});
  MigrationDecision optimize_migration(
      const std::vector<MigrationWorkflowState>& states,
      const SearchOptions& options = {});

  vgpu::ComputeBackend& backend() { return *backend_; }
  const cloud::Catalog& catalog() const { return *catalog_; }
  const cloud::MetadataStore& store() const { return *store_; }
  const DecoOptions& options() const { return options_; }

 private:
  const cloud::Catalog* catalog_;
  const cloud::MetadataStore* store_;
  DecoOptions options_;
  std::unique_ptr<vgpu::ComputeBackend> backend_;
};

}  // namespace deco::core
