// Native probabilistic plan evaluation — the compiled counterpart of the
// WLog probabilistic IR (what the paper's GPU kernels compute).
//
// A candidate plan is scored by Monte Carlo over the per-task execution-time
// histograms: each lane samples one "possible world" (one time per task),
// takes the DAG longest path as the workflow makespan (the distributional
// version of Eq. 3) and a monetary cost (Eq. 1).  Kernel decomposition per
// Section 5.3: one block per evaluated plan, one lane per Monte Carlo
// iteration, lane results reduced through block shared memory.  The histogram
// data is laid out as flat SoA arrays (offsets + centers + alias tables) so
// the kernel touches contiguous memory — the paper's "memory-optimized"
// implementation.
//
// The hot path is allocation-free and O(1) per task-sample (see
// docs/performance.md):
//   * bins are drawn through Walker/Vose alias tables instead of a binary
//     CDF search;
//   * per-(task, vm type) staged segments and whole per-plan device images
//     are cached, so the mostly-overlapping plans a search wave produces are
//     staged once and reused across batches;
//   * lane scratch lives in the block context's reusable arena, not in
//     per-lane heap allocations.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/estimator.hpp"
#include "sim/failure_model.hpp"
#include "sim/plan.hpp"
#include "util/aligned.hpp"
#include "util/budget.hpp"
#include "util/qmc.hpp"
#include "vgpu/device.hpp"
#include "workflow/dag.hpp"

namespace deco::core {

class AnalyticEstimator;

/// Probabilistic deadline requirement: P(makespan <= deadline) >= quantile.
struct ProbDeadline {
  double quantile = 0.96;  ///< the paper's default QoS setting
  double deadline_s = 0;
};

enum class CostModel {
  kProrated,     ///< Eq. 1: sum of mean task time x unit price (fractional h)
  kBilledHours,  ///< per-instance ceil-to-hour, groups share instances
};

/// Which tier(s) of the estimator hierarchy score a plan
/// (docs/performance.md, "Estimator hierarchy"):
///   kMc       — Tier 2 only: the fixed-iteration Monte Carlo evaluator.
///               Bit-identical to the pre-hierarchy evaluator.
///   kAnalytic — Tier 0 only: closed-form moment-matching max-plus screen
///               (no sampling at all; feasibility from the normal fit).
///   kAuto     — Tier 0 screens every plan; plans the screen cannot decide
///               within the guard band escalate to Tier 1 (adaptive QMC with
///               a sequential confidence bound, capped at mc_iterations).
enum class EstimatorMode { kMc, kAnalytic, kAuto };

/// "mc" | "analytic" | "auto" (CLI --estimator values); nullopt on unknown.
std::optional<EstimatorMode> parse_estimator_mode(std::string_view name);
const char* to_string(EstimatorMode mode);

/// How a screened plan was decided.
enum class ScreenVerdict {
  kNone,      ///< estimator mode kMc: no screen ran
  kAccept,    ///< analytic screen cleared the guard band: feasible, no MC
  kReject,    ///< analytic screen failed the guard band: infeasible, no MC
  kEscalate,  ///< inside the band: decided by adaptive QMC sampling
};

struct EvalOptions {
  std::size_t mc_iterations = 128;
  CostModel cost_model = CostModel::kProrated;
  std::uint64_t seed = 99;
  /// Correlated interference (matches sim::ExecutorOptions::interference_cv):
  /// each Monte Carlo world samples one factor that scales every task's
  /// dynamic (I/O + network) time, because congestion persists across a run.
  double interference_cv = 0.15;
  /// Guard band on the probabilistic requirement: with Max_iter Monte Carlo
  /// lanes the quantile estimate carries ~sqrt(p(1-p)/Max_iter) noise, so a
  /// plan is declared feasible only if P(makespan <= D) clears the required
  /// quantile by this margin.  Keeps the paper's "results guarantee the
  /// probabilistic deadline requirement" property on the simulator.
  double feasibility_margin = 0.02;
  /// Deadline de-rating for the feasibility check: the 16-bin histograms
  /// compress the extreme right tail (a bin center averages its bin), so the
  /// estimated makespan quantile runs a few percent light.  Feasibility is
  /// checked against deadline / quantile_safety.
  double quantile_safety = 1.05;
  /// Failure-aware evaluation (borrowed; may be nullptr): the model's
  /// expected retry/straggler/crash inflation is folded into every staged
  /// task segment, so probabilistic deadlines account for the same failure
  /// process the simulator injects.  Null leaves results bit-identical to
  /// the failure-free evaluator.
  const sim::FailureModel* failure_model = nullptr;
  /// Estimator-hierarchy tier selection for evaluate_batch_screened().  The
  /// library default is kMc so existing callers (and the `--estimator mc`
  /// CLI path) stay bit-identical to the pre-hierarchy evaluator; the CLI
  /// defaults to kAuto.
  EstimatorMode estimator = EstimatorMode::kMc;
  /// Guard band for the analytic screen, in standard-normal z units: the
  /// screen accepts only when its feasibility z-score clears the required
  /// quantile's z by this margin, rejects only when it falls short by the
  /// same margin, and escalates anything in between to sampling.  z-space
  /// (rather than probability-space) keeps the band meaningful near
  /// required ~ 0.98 where probabilities saturate.
  double screen_guard_z = 0.8;
  /// Adaptive QMC: iterations run between sequential-bound checkpoints.
  std::size_t qmc_batch = 128;
  /// Adaptive QMC: iterations before the first early-stop check (the Wilson
  /// bound is too loose to trust below this).
  std::size_t qmc_min_iterations = 128;
  /// Adaptive QMC: z-score of the Wilson confidence interval that must clear
  /// (or fail) the required quantile before sampling stops early.  2.576 =
  /// two-sided 99%.
  double qmc_confidence_z = 2.576;
};

struct PlanEvaluation {
  double mean_cost = 0;          ///< USD
  double mean_makespan = 0;      ///< seconds
  double makespan_quantile = 0;  ///< the requirement's quantile of makespan
  double deadline_prob = 0;      ///< P(makespan <= deadline)
  bool feasible = false;         ///< deadline_prob >= quantile
};

/// Hit/miss counters for the two staging cache levels (diagnostics; the
/// determinism tests also use them to prove the cached path was exercised).
struct StagingCacheStats {
  std::size_t plan_hits = 0;
  std::size_t plan_misses = 0;
  std::size_t segment_hits = 0;
  std::size_t segment_misses = 0;
};

/// One plan's screened score: the evaluation plus how it was decided and what
/// sampling it cost.
struct ScreenedEvaluation {
  PlanEvaluation eval;
  ScreenVerdict verdict = ScreenVerdict::kNone;
  std::size_t mc_iterations_used = 0;  ///< sampled worlds (0 for Tier 0 calls)
  bool qmc_early_stop = false;  ///< Tier 1 stopped before the iteration cap
};

/// Running tallies for the estimator hierarchy (mirrored into the
/// eval.screen.* / eval.qmc.* obs counters).
struct ScreenStats {
  std::size_t screened = 0;   ///< plans that went through the analytic screen
  std::size_t accepted = 0;   ///< decided feasible by Tier 0 alone
  std::size_t rejected = 0;   ///< decided infeasible by Tier 0 alone
  std::size_t escalated = 0;  ///< sent to Tier 1 sampling
  std::size_t qmc_early_stops = 0;
  std::size_t qmc_iterations_used = 0;
  std::size_t qmc_iterations_saved = 0;  ///< vs. the mc_iterations cap
  std::size_t full_mc_verifications = 0;  ///< Tier 2 verifier invocations
};

class PlanEvaluator {
 public:
  /// The evaluator borrows the workflow, estimator and backend; they must
  /// outlive it.
  PlanEvaluator(const workflow::Workflow& wf, TaskTimeEstimator& estimator,
                vgpu::ComputeBackend& backend, EvalOptions options = {});
  ~PlanEvaluator();  // out-of-line: AnalyticEstimator is incomplete here

  /// Evaluates one plan against a probabilistic deadline.
  PlanEvaluation evaluate(const sim::Plan& plan, const ProbDeadline& req);

  /// Evaluates many plans concurrently: one block per plan.
  std::vector<PlanEvaluation> evaluate_batch(std::span<const sim::Plan> plans,
                                             const ProbDeadline& req);

  /// Estimator-hierarchy entry point: routes each plan through the tiers
  /// selected by options().estimator.  kMc delegates to evaluate_batch (bit-
  /// identical results, verdict kNone); kAnalytic answers every plan from the
  /// Tier 0 closed form; kAuto screens analytically and escalates only the
  /// guard-band states to adaptive QMC sampling.
  std::vector<ScreenedEvaluation> evaluate_batch_screened(
      std::span<const sim::Plan> plans, const ProbDeadline& req);

  /// Tier 2 verifier: full fixed-iteration MC regardless of estimator mode.
  /// Identical to evaluate(); the separate name records intent at call sites
  /// and feeds the full_mc_verifications tally.
  PlanEvaluation verify_full_mc(const sim::Plan& plan, const ProbDeadline& req);

  const workflow::Workflow& workflow() const { return *wf_; }
  TaskTimeEstimator& estimator() { return *estimator_; }
  const EvalOptions& options() const { return options_; }

  /// Solver fallback hook: switch the estimator tier in place.  Touches no
  /// cache or RNG state — the MC kernel, the staged segments and the QMC
  /// sequence are all keyed on data that does not change with the mode — so
  /// flipping to kMc and back yields bit-identical full-MC results.
  void set_estimator_mode(EstimatorMode mode) { options_.estimator = mode; }

  const StagingCacheStats& cache_stats() const { return cache_stats_; }
  const ScreenStats& screen_stats() const { return screen_stats_; }
  /// Drops both cache levels (e.g. after the estimator was recalibrated).
  void clear_staging_cache();

  /// Arms (or disarms, with nullptr) a per-solve budget.  Batch entry points
  /// publish cache bytes, run the memory degradation ladder (drop whole-plan
  /// device images, then segments, then request a visited-set shrink from
  /// the driver), and checkpoint the kernels at block entry and every tile
  /// boundary, throwing BudgetExhaustedError once a trigger fires.  A budget
  /// that never fires leaves results bit-identical: checkpoints only read,
  /// and cache eviction is result-neutral by construction.
  void set_budget(util::BudgetTracker* budget) { budget_ = budget; }
  util::BudgetTracker* budget() const { return budget_; }
  /// Resident bytes of the two staging-cache levels (approximate; what the
  /// memory budget meters).
  std::size_t cache_bytes() const {
    return plan_cache_bytes_ + segment_cache_bytes_;
  }

 private:
  /// One pre-resolved alias-table column: a draw that lands in this column
  /// yields `stay_center` with probability `prob`, else `alias_center`.
  /// Materializing both bin centers in the column removes the dependent
  /// centers[alias[k]] load from the sampling loop — one contiguous 24-byte
  /// read per draw.
  struct AliasColumn {
    double prob = 1;
    double stay_center = 0;
    double alias_center = 0;
  };

  /// Flat SoA image of one plan's histograms, prices and grouping.  The
  /// histograms cover the dynamic (I/O + network) component; CPU time is a
  /// constant per task added after interference scaling.  All per-task
  /// arrays are stored in *topological position* order (position p holds
  /// task topo_[p]), so the kernel's single forward pass walks every array
  /// sequentially, and each array starts on a 64-byte boundary so the
  /// task-major row loops vectorize with aligned accesses.  Bins are
  /// sampled through flat alias columns: column k of position p lives at
  /// bin_offsets[p] + k.
  struct DevicePlan {
    util::AlignedVector<std::size_t> bin_offsets;  // N+1
    util::AlignedVector<AliasColumn> columns;
    util::AlignedVector<double> cpu;          // constant CPU seconds/position
    util::AlignedVector<double> price_per_s;  // assigned unit price / 3600
    util::AlignedVector<double> price_hour;   // assigned unit price, USD/h
    util::AlignedVector<std::int32_t> group;
    util::AlignedVector<double> group_price_hour;   // per group slot, USD/h
    util::AlignedVector<std::uint32_t> group_size;  // members per group slot
    std::size_t group_slots = 0;                    // max group id + 1
  };

  /// One cached (task, vm type) staging unit: the dynamic-time histogram
  /// flattened into alias columns, plus the constant CPU time.
  struct TaskSegment {
    std::vector<AliasColumn> columns;
    double cpu = 0;
  };

  const TaskSegment& segment(workflow::TaskId task, cloud::TypeId type);
  std::shared_ptr<const DevicePlan> stage(const sim::Plan& plan);
  PlanEvaluation reduce(std::span<const double> makespans,
                        std::span<const double> costs,
                        const ProbDeadline& req) const;

  /// Tier 1: adaptive QMC over the escalated subset.  Samples Kronecker
  /// worlds in qmc_batch chunks and stops a plan as soon as the Wilson
  /// confidence interval on P(makespan <= deadline) clears (or fails) the
  /// required quantile; hard-capped at mc_iterations.  Fully deterministic:
  /// every draw is a pure function of (seed, dimension, index).
  std::vector<ScreenedEvaluation> evaluate_batch_adaptive(
      std::span<const sim::Plan> plans, const ProbDeadline& req);

  /// Publishes screen-stat deltas to the obs counters and folds them into
  /// screen_stats_.
  void record_screen_stats(const ScreenStats& delta);

  /// Publishes cache byte gauges to the budget tracker and, when over the
  /// memory cap, runs the degradation ladder.  Called at batch entry (before
  /// staging grows the caches further); no-op without an armed budget.
  void enforce_memory_budget();
  static std::size_t device_plan_bytes(const DevicePlan& dev);
  static std::size_t segment_bytes(const TaskSegment& seg);

  /// Task-major tile evaluation shared by the fixed-iteration MC kernel and
  /// the adaptive QMC kernel: consumes the tile's pre-generated uniforms and
  /// interference speedups and writes per-lane makespans/costs into the
  /// accumulator rows.  Both kernels run the exact same per-lane arithmetic,
  /// which keeps `--estimator mc` bit-identical to the pre-hierarchy
  /// evaluator and lets the QMC path inherit every kernel optimization.
  void eval_tile_rows(const DevicePlan& dev, bool billed, std::size_t tile,
                      std::size_t lanes, std::span<const double> uniforms,
                      std::span<double> finish,
                      std::span<const double> inv_inter,
                      std::span<double> start, std::span<const double> zero_row,
                      std::span<double> duration,
                      std::span<double> makespan_acc,
                      std::span<double> cost_acc, std::span<double> group_avail,
                      std::span<double> group_time) const;

  const workflow::Workflow* wf_;
  TaskTimeEstimator* estimator_;
  vgpu::ComputeBackend* backend_;
  EvalOptions options_;

  // DAG image shared by all plans: the topological order plus a CSR parent
  // list expressed in topological *positions* (parents_[e] is the position,
  // not the task id, of a parent), so the kernel's finish-time array is
  // indexed by position and the forward pass is fully sequential.
  std::vector<workflow::TaskId> topo_;
  std::vector<std::size_t> parent_offsets_;   // indexed by position, N+1
  std::vector<std::uint32_t> parents_;        // parent positions
  // sink_[p] != 0 iff position p has no children.  Finish times are monotone
  // along DAG edges (durations are >= 0), so the makespan — max finish over
  // all tasks — equals the max over sinks alone, and the kernel only folds
  // sink rows into its makespan accumulator.
  std::vector<std::uint8_t> sink_;

  struct PlanKeyHash {
    std::size_t operator()(const sim::Plan& plan) const;
  };

  // Two-level staging cache.  Segments are keyed by (task, vm type) — the
  // estimator's distributions are deterministic per key, so entries never
  // invalidate.  Device plans are keyed by the whole placement vector and
  // evicted wholesale when the map grows past kMaxCachedPlans (search waves
  // revisit recent plans, so epoch eviction keeps the working set hot).
  static constexpr std::size_t kMaxCachedPlans = 4096;
  std::unordered_map<std::uint64_t, TaskSegment> segment_cache_;
  std::unordered_map<sim::Plan, std::shared_ptr<const DevicePlan>, PlanKeyHash>
      plan_cache_;
  StagingCacheStats cache_stats_;
  std::size_t plan_cache_bytes_ = 0;
  std::size_t segment_cache_bytes_ = 0;
  util::BudgetTracker* budget_ = nullptr;  // borrowed; null = unbudgeted

  // Estimator hierarchy.  The analytic screen (Tier 0) shares the segment
  // cache through its friendship; the Kronecker sequence (Tier 1) is built
  // lazily at first escalation — one dimension for the interference factor
  // plus one per task — and shared by every plan (common random numbers).
  friend class AnalyticEstimator;
  std::unique_ptr<AnalyticEstimator> analytic_;
  util::KroneckerSequence qmc_points_;
  ScreenStats screen_stats_;
};

}  // namespace deco::core
