// Native probabilistic plan evaluation — the compiled counterpart of the
// WLog probabilistic IR (what the paper's GPU kernels compute).
//
// A candidate plan is scored by Monte Carlo over the per-task execution-time
// histograms: each lane samples one "possible world" (one time per task),
// takes the DAG longest path as the workflow makespan (the distributional
// version of Eq. 3) and a monetary cost (Eq. 1).  Kernel decomposition per
// Section 5.3: one block per evaluated plan, one lane per Monte Carlo
// iteration, lane results reduced through block shared memory.  The histogram
// data is laid out as flat SoA arrays (offsets + centers + cdf) so the kernel
// touches contiguous memory — the paper's "memory-optimized" implementation.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/estimator.hpp"
#include "sim/plan.hpp"
#include "vgpu/device.hpp"
#include "workflow/dag.hpp"

namespace deco::core {

/// Probabilistic deadline requirement: P(makespan <= deadline) >= quantile.
struct ProbDeadline {
  double quantile = 0.96;  ///< the paper's default QoS setting
  double deadline_s = 0;
};

enum class CostModel {
  kProrated,     ///< Eq. 1: sum of mean task time x unit price (fractional h)
  kBilledHours,  ///< per-instance ceil-to-hour, groups share instances
};

struct EvalOptions {
  std::size_t mc_iterations = 128;
  CostModel cost_model = CostModel::kProrated;
  std::uint64_t seed = 99;
  /// Correlated interference (matches sim::ExecutorOptions::interference_cv):
  /// each Monte Carlo world samples one factor that scales every task's
  /// dynamic (I/O + network) time, because congestion persists across a run.
  double interference_cv = 0.15;
  /// Guard band on the probabilistic requirement: with Max_iter Monte Carlo
  /// lanes the quantile estimate carries ~sqrt(p(1-p)/Max_iter) noise, so a
  /// plan is declared feasible only if P(makespan <= D) clears the required
  /// quantile by this margin.  Keeps the paper's "results guarantee the
  /// probabilistic deadline requirement" property on the simulator.
  double feasibility_margin = 0.02;
  /// Deadline de-rating for the feasibility check: the 16-bin histograms
  /// compress the extreme right tail (a bin center averages its bin), so the
  /// estimated makespan quantile runs a few percent light.  Feasibility is
  /// checked against deadline / quantile_safety.
  double quantile_safety = 1.05;
};

struct PlanEvaluation {
  double mean_cost = 0;          ///< USD
  double mean_makespan = 0;      ///< seconds
  double makespan_quantile = 0;  ///< the requirement's quantile of makespan
  double deadline_prob = 0;      ///< P(makespan <= deadline)
  bool feasible = false;         ///< deadline_prob >= quantile
};

class PlanEvaluator {
 public:
  /// The evaluator borrows the workflow, estimator and backend; they must
  /// outlive it.
  PlanEvaluator(const workflow::Workflow& wf, TaskTimeEstimator& estimator,
                vgpu::ComputeBackend& backend, EvalOptions options = {});

  /// Evaluates one plan against a probabilistic deadline.
  PlanEvaluation evaluate(const sim::Plan& plan, const ProbDeadline& req);

  /// Evaluates many plans concurrently: one block per plan.
  std::vector<PlanEvaluation> evaluate_batch(std::span<const sim::Plan> plans,
                                             const ProbDeadline& req);

  const workflow::Workflow& workflow() const { return *wf_; }
  TaskTimeEstimator& estimator() { return *estimator_; }
  const EvalOptions& options() const { return options_; }

 private:
  /// Flat SoA image of one plan's histograms, prices and grouping.  The
  /// histograms cover the dynamic (I/O + network) component; CPU time is a
  /// constant per task added after interference scaling.
  struct DevicePlan {
    std::vector<std::size_t> bin_offsets;  // N+1
    std::vector<double> centers;
    std::vector<double> cdf;
    std::vector<double> cpu;          // constant CPU seconds per task
    std::vector<double> price_per_s;  // assigned unit price / 3600
    std::vector<std::int32_t> group;
    std::size_t group_slots = 0;      // max group id + 1
  };

  DevicePlan stage(const sim::Plan& plan);
  PlanEvaluation reduce(std::span<const double> makespans,
                        std::span<const double> costs,
                        const ProbDeadline& req) const;

  const workflow::Workflow* wf_;
  TaskTimeEstimator* estimator_;
  vgpu::ComputeBackend* backend_;
  EvalOptions options_;

  // DAG image shared by all plans (CSR parents + topological order).
  std::vector<workflow::TaskId> topo_;
  std::vector<std::size_t> parent_offsets_;
  std::vector<workflow::TaskId> parents_;
};

}  // namespace deco::core
