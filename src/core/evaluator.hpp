// Native probabilistic plan evaluation — the compiled counterpart of the
// WLog probabilistic IR (what the paper's GPU kernels compute).
//
// A candidate plan is scored by Monte Carlo over the per-task execution-time
// histograms: each lane samples one "possible world" (one time per task),
// takes the DAG longest path as the workflow makespan (the distributional
// version of Eq. 3) and a monetary cost (Eq. 1).  Kernel decomposition per
// Section 5.3: one block per evaluated plan, one lane per Monte Carlo
// iteration, lane results reduced through block shared memory.  The histogram
// data is laid out as flat SoA arrays (offsets + centers + alias tables) so
// the kernel touches contiguous memory — the paper's "memory-optimized"
// implementation.
//
// The hot path is allocation-free and O(1) per task-sample (see
// docs/performance.md):
//   * bins are drawn through Walker/Vose alias tables instead of a binary
//     CDF search;
//   * per-(task, vm type) staged segments and whole per-plan device images
//     are cached, so the mostly-overlapping plans a search wave produces are
//     staged once and reused across batches;
//   * lane scratch lives in the block context's reusable arena, not in
//     per-lane heap allocations.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/estimator.hpp"
#include "sim/failure_model.hpp"
#include "sim/plan.hpp"
#include "util/aligned.hpp"
#include "vgpu/device.hpp"
#include "workflow/dag.hpp"

namespace deco::core {

/// Probabilistic deadline requirement: P(makespan <= deadline) >= quantile.
struct ProbDeadline {
  double quantile = 0.96;  ///< the paper's default QoS setting
  double deadline_s = 0;
};

enum class CostModel {
  kProrated,     ///< Eq. 1: sum of mean task time x unit price (fractional h)
  kBilledHours,  ///< per-instance ceil-to-hour, groups share instances
};

struct EvalOptions {
  std::size_t mc_iterations = 128;
  CostModel cost_model = CostModel::kProrated;
  std::uint64_t seed = 99;
  /// Correlated interference (matches sim::ExecutorOptions::interference_cv):
  /// each Monte Carlo world samples one factor that scales every task's
  /// dynamic (I/O + network) time, because congestion persists across a run.
  double interference_cv = 0.15;
  /// Guard band on the probabilistic requirement: with Max_iter Monte Carlo
  /// lanes the quantile estimate carries ~sqrt(p(1-p)/Max_iter) noise, so a
  /// plan is declared feasible only if P(makespan <= D) clears the required
  /// quantile by this margin.  Keeps the paper's "results guarantee the
  /// probabilistic deadline requirement" property on the simulator.
  double feasibility_margin = 0.02;
  /// Deadline de-rating for the feasibility check: the 16-bin histograms
  /// compress the extreme right tail (a bin center averages its bin), so the
  /// estimated makespan quantile runs a few percent light.  Feasibility is
  /// checked against deadline / quantile_safety.
  double quantile_safety = 1.05;
  /// Failure-aware evaluation (borrowed; may be nullptr): the model's
  /// expected retry/straggler/crash inflation is folded into every staged
  /// task segment, so probabilistic deadlines account for the same failure
  /// process the simulator injects.  Null leaves results bit-identical to
  /// the failure-free evaluator.
  const sim::FailureModel* failure_model = nullptr;
};

struct PlanEvaluation {
  double mean_cost = 0;          ///< USD
  double mean_makespan = 0;      ///< seconds
  double makespan_quantile = 0;  ///< the requirement's quantile of makespan
  double deadline_prob = 0;      ///< P(makespan <= deadline)
  bool feasible = false;         ///< deadline_prob >= quantile
};

/// Hit/miss counters for the two staging cache levels (diagnostics; the
/// determinism tests also use them to prove the cached path was exercised).
struct StagingCacheStats {
  std::size_t plan_hits = 0;
  std::size_t plan_misses = 0;
  std::size_t segment_hits = 0;
  std::size_t segment_misses = 0;
};

class PlanEvaluator {
 public:
  /// The evaluator borrows the workflow, estimator and backend; they must
  /// outlive it.
  PlanEvaluator(const workflow::Workflow& wf, TaskTimeEstimator& estimator,
                vgpu::ComputeBackend& backend, EvalOptions options = {});

  /// Evaluates one plan against a probabilistic deadline.
  PlanEvaluation evaluate(const sim::Plan& plan, const ProbDeadline& req);

  /// Evaluates many plans concurrently: one block per plan.
  std::vector<PlanEvaluation> evaluate_batch(std::span<const sim::Plan> plans,
                                             const ProbDeadline& req);

  const workflow::Workflow& workflow() const { return *wf_; }
  TaskTimeEstimator& estimator() { return *estimator_; }
  const EvalOptions& options() const { return options_; }

  const StagingCacheStats& cache_stats() const { return cache_stats_; }
  /// Drops both cache levels (e.g. after the estimator was recalibrated).
  void clear_staging_cache();

 private:
  /// One pre-resolved alias-table column: a draw that lands in this column
  /// yields `stay_center` with probability `prob`, else `alias_center`.
  /// Materializing both bin centers in the column removes the dependent
  /// centers[alias[k]] load from the sampling loop — one contiguous 24-byte
  /// read per draw.
  struct AliasColumn {
    double prob = 1;
    double stay_center = 0;
    double alias_center = 0;
  };

  /// Flat SoA image of one plan's histograms, prices and grouping.  The
  /// histograms cover the dynamic (I/O + network) component; CPU time is a
  /// constant per task added after interference scaling.  All per-task
  /// arrays are stored in *topological position* order (position p holds
  /// task topo_[p]), so the kernel's single forward pass walks every array
  /// sequentially, and each array starts on a 64-byte boundary so the
  /// task-major row loops vectorize with aligned accesses.  Bins are
  /// sampled through flat alias columns: column k of position p lives at
  /// bin_offsets[p] + k.
  struct DevicePlan {
    util::AlignedVector<std::size_t> bin_offsets;  // N+1
    util::AlignedVector<AliasColumn> columns;
    util::AlignedVector<double> cpu;          // constant CPU seconds/position
    util::AlignedVector<double> price_per_s;  // assigned unit price / 3600
    util::AlignedVector<double> price_hour;   // assigned unit price, USD/h
    util::AlignedVector<std::int32_t> group;
    util::AlignedVector<double> group_price_hour;   // per group slot, USD/h
    util::AlignedVector<std::uint32_t> group_size;  // members per group slot
    std::size_t group_slots = 0;                    // max group id + 1
  };

  /// One cached (task, vm type) staging unit: the dynamic-time histogram
  /// flattened into alias columns, plus the constant CPU time.
  struct TaskSegment {
    std::vector<AliasColumn> columns;
    double cpu = 0;
  };

  const TaskSegment& segment(workflow::TaskId task, cloud::TypeId type);
  std::shared_ptr<const DevicePlan> stage(const sim::Plan& plan);
  PlanEvaluation reduce(std::span<const double> makespans,
                        std::span<const double> costs,
                        const ProbDeadline& req) const;

  const workflow::Workflow* wf_;
  TaskTimeEstimator* estimator_;
  vgpu::ComputeBackend* backend_;
  EvalOptions options_;

  // DAG image shared by all plans: the topological order plus a CSR parent
  // list expressed in topological *positions* (parents_[e] is the position,
  // not the task id, of a parent), so the kernel's finish-time array is
  // indexed by position and the forward pass is fully sequential.
  std::vector<workflow::TaskId> topo_;
  std::vector<std::size_t> parent_offsets_;   // indexed by position, N+1
  std::vector<std::uint32_t> parents_;        // parent positions
  // sink_[p] != 0 iff position p has no children.  Finish times are monotone
  // along DAG edges (durations are >= 0), so the makespan — max finish over
  // all tasks — equals the max over sinks alone, and the kernel only folds
  // sink rows into its makespan accumulator.
  std::vector<std::uint8_t> sink_;

  struct PlanKeyHash {
    std::size_t operator()(const sim::Plan& plan) const;
  };

  // Two-level staging cache.  Segments are keyed by (task, vm type) — the
  // estimator's distributions are deterministic per key, so entries never
  // invalidate.  Device plans are keyed by the whole placement vector and
  // evicted wholesale when the map grows past kMaxCachedPlans (search waves
  // revisit recent plans, so epoch eviction keeps the working set hot).
  static constexpr std::size_t kMaxCachedPlans = 4096;
  std::unordered_map<std::uint64_t, TaskSegment> segment_cache_;
  std::unordered_map<sim::Plan, std::shared_ptr<const DevicePlan>, PlanKeyHash>
      plan_cache_;
  StagingCacheStats cache_stats_;
};

}  // namespace deco::core
