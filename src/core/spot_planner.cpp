#include "core/spot_planner.hpp"

#include <algorithm>

namespace deco::core {

std::vector<double> task_slack(const workflow::Workflow& wf,
                               const sim::Plan& plan,
                               TaskTimeEstimator& estimator,
                               double deadline_s) {
  const std::size_t n = wf.task_count();
  std::vector<double> mean(n);
  for (workflow::TaskId t = 0; t < n; ++t) {
    mean[t] = estimator.mean_time(wf, t, plan[t].vm_type);
  }
  const auto topo = wf.topological_order();
  std::vector<double> up(n, 0);
  std::vector<double> down(n, 0);
  if (topo) {
    for (workflow::TaskId t : *topo) {
      up[t] = mean[t];
      for (workflow::TaskId p : wf.parents(t)) {
        up[t] = std::max(up[t], up[p] + mean[t]);
      }
    }
    for (auto it = topo->rbegin(); it != topo->rend(); ++it) {
      const workflow::TaskId t = *it;
      down[t] = mean[t];
      for (workflow::TaskId c : wf.children(t)) {
        down[t] = std::max(down[t], down[c] + mean[t]);
      }
    }
  }
  std::vector<double> slack(n, 0);
  for (workflow::TaskId t = 0; t < n; ++t) {
    slack[t] = deadline_s - (up[t] + down[t] - mean[t]);
  }
  return slack;
}

sim::SpotPolicy plan_spot_policy(const workflow::Workflow& wf,
                                 const sim::Plan& plan,
                                 TaskTimeEstimator& estimator,
                                 double deadline_s,
                                 const SpotPlannerOptions& options) {
  sim::SpotPolicy policy;
  policy.bid_fraction = options.bid_fraction;
  const std::size_t n = wf.task_count();
  policy.use_spot.assign(n, false);
  const auto slack = task_slack(wf, plan, estimator, deadline_s);
  for (workflow::TaskId t = 0; t < n; ++t) {
    const double mean = estimator.mean_time(wf, t, plan[t].vm_type);
    policy.use_spot[t] =
        slack[t] > options.slack_multiple * mean + options.revocation_delay_s;
  }
  return policy;
}

}  // namespace deco::core
