// Generalized declarative solver: executes a WLog program's goal /
// constraints / var declaration against a probabilistic IR, independent of
// the problem the program encodes.
//
// The paper's three use cases declare differently-shaped decision variables:
//   * scheduling:  var configs(Tid,Vid,Con) forall task(Tid) and vm(Vid).
//     -> one *choice* (a vm) per *entity* (a task);
//   * ensembles:   var execute(W,Run) forall wkf(W).
//     -> one *boolean* per entity (a workflow);
//   * migration:   var migrate(W,R,G) forall wkf(W) and region(R).
//     -> one choice (a region) per entity.
// The solver derives the shape from the var directive:
//   - two generators: each solution of the first generator is an entity,
//     each solution of the second a choice; a state assigns one choice per
//     entity, and the selected template instances are asserted with their
//     remaining free variable bound to 1;
//   - one generator: boolean per entity; the template is asserted with flag
//     1 for selected entities and 0 otherwise.
// States are explored from the all-first-choice / all-false origin with
// one-entity transitions (the Promote-style lattice of Fig. 5), evaluated by
// Monte Carlo inference over the IR, and searched generically or with A*
// (cal_g_score / est_h_score) when enabled(astar) is present.
#pragma once

#include <string>
#include <vector>

#include "core/search.hpp"
#include "util/rng.hpp"
#include "wlog/problog.hpp"

namespace deco::core {

struct DeclarativeOptions {
  std::size_t max_states = 48;
  std::size_t batch_size = 8;
  std::size_t mc_iterations = 48;
  std::size_t stale_wave_limit = 6;
  std::uint64_t seed = 99;
  /// Optional cooperative solve budget, threaded into the state search, the
  /// Monte Carlo evaluation loops, and the WLog interpreters.  A fired
  /// budget cuts the search anytime-style (the result keeps the incumbent).
  util::BudgetTracker* budget = nullptr;
  /// WLog engine for generator enumeration, A* scores, and per-world Monte
  /// Carlo proofs (kInterp is the differential oracle).
  wlog::ExecMode exec = wlog::ExecMode::kVm;
  /// Translate recognized totalcost/maxtime query shapes into direct
  /// segment evaluators (core/wlog_segments.hpp); unrecognized shapes fall
  /// back to the engine either way.
  bool segments = true;
};

struct DeclarativeResult {
  bool ok = false;
  std::string error;

  /// Entity keys (rendered generator-1 solutions) in enumeration order.
  std::vector<std::string> entities;
  /// Choice keys (rendered generator-2 solutions), or {"0","1"} for the
  /// boolean form.
  std::vector<std::string> choices;
  /// Per entity: index into `choices` (boolean form: 0 or 1).
  std::vector<int> assignment;

  double goal_value = 0;
  bool feasible = false;
  SearchStats stats;
  /// Budget outcome (all-zero when options.budget was null).
  util::SolveReport budget;
};

class DeclarativeSolver {
 public:
  explicit DeclarativeSolver(DeclarativeOptions options = {})
      : options_(options) {}

  /// Solves `program` over the IR `ir` (rules + facts + probabilistic
  /// groups; the decision facts are asserted per state by the solver).
  DeclarativeResult solve(const wlog::Program& program,
                          const wlog::ProbProgram& ir);

 private:
  DeclarativeOptions options_;
};

}  // namespace deco::core
