// Task execution-time estimation (Section 5.1).
//
// "Given the input data size, the CPU execution time ... and the output data
// size of a task, the overall execution time of the task on a cloud instance
// can be estimated with the sum of the CPU, I/O and network time of running
// the task on this instance.  Note, since the I/O and network performance of
// the cloud are dynamic, the estimated task execution time is also a
// probabilistic distribution."
//
// The estimator reads the calibrated histograms from the metadata store
// (never the catalog's ground truth) and composes, per (task, vm type), the
// execution-time distribution by Monte Carlo convolution of:
//   cpu   = cpu_seconds / compute_units                  (constant)
//   io    = (in+out bytes) / seq_io_rate + ops / iops    (random rates)
//   net   = incoming edge bytes / pair bandwidth         (random rate)
// discretized back into a histogram the evaluator and the WLog bridge share.
#pragma once

#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "cloud/instance_type.hpp"
#include "cloud/metadata_store.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "workflow/dag.hpp"

namespace deco::core {

struct EstimatorOptions {
  std::string provider = "ec2";
  std::size_t convolution_samples = 512;  ///< MC draws per (task, type)
  std::size_t histogram_bins = 16;
  double rand_io_ops_per_task = 50;
  /// Model network fetch of parent outputs (assumes remote parents, the
  /// conservative estimate; the simulator charges only cross-instance edges).
  bool include_network = true;
  std::uint64_t seed = 2015;
};

class TaskTimeEstimator {
 public:
  TaskTimeEstimator(const cloud::Catalog& catalog,
                    const cloud::MetadataStore& store,
                    EstimatorOptions options = {});

  /// Execution-time distribution of `task` of `wf` on instance type `type`.
  /// Cached; the cache key is (task id, type), so use one estimator per
  /// workflow.  All accessors are thread-safe (the pipelined search driver
  /// generates children — which read mean times — concurrently with batch
  /// evaluation, which stages distributions); returned references stay
  /// valid for the estimator's lifetime, and cache contents are independent
  /// of call order, so concurrency cannot change results.
  const util::Histogram& distribution(const workflow::Workflow& wf,
                                      workflow::TaskId task,
                                      cloud::TypeId type);

  /// The *dynamic* part only (I/O + network seconds; CPU excluded).  The
  /// evaluator scales this component by a correlated per-world interference
  /// factor — congestion persists across a run, so sampling it per task
  /// would understate makespan spread.
  const util::Histogram& dynamic_distribution(const workflow::Workflow& wf,
                                              workflow::TaskId task,
                                              cloud::TypeId type);

  /// The constant CPU component (reference seconds / per-core units).
  double cpu_time(const workflow::Workflow& wf, workflow::TaskId task,
                  cloud::TypeId type) const;

  /// Mean execution time (M_ij in Eq. 2).
  double mean_time(const workflow::Workflow& wf, workflow::TaskId task,
                   cloud::TypeId type);

  /// q-th percentile (q in [0,100]) of the task's time on `type`.
  double percentile_time(const workflow::Workflow& wf, workflow::TaskId task,
                         cloud::TypeId type, double q);

  const cloud::Catalog& catalog() const { return *catalog_; }
  const EstimatorOptions& options() const { return options_; }

 private:
  void build(const workflow::Workflow& wf, workflow::TaskId task,
             cloud::TypeId type);

  const cloud::Catalog* catalog_;
  const cloud::MetadataStore* store_;
  EstimatorOptions options_;
  // Guards both caches.  Histograms are immutable once inserted and
  // unordered_map never invalidates references to mapped values, so shared
  // readers may hold returned references across later inserts.
  mutable std::shared_mutex cache_mutex_;
  std::unordered_map<std::uint64_t, util::Histogram> cache_;      // total
  std::unordered_map<std::uint64_t, util::Histogram> dyn_cache_;  // io+net
};

/// Builds a metadata store directly from the catalog's distributions without
/// a sampling pass (convenience for tests and engine setup).
cloud::MetadataStore make_store_from_catalog(const cloud::Catalog& catalog,
                                             const std::string& provider = "ec2",
                                             std::size_t samples = 4000,
                                             std::size_t bins = 24,
                                             std::uint64_t seed = 7);

}  // namespace deco::core
