#include "core/ensemble_planner.hpp"

#include <cmath>
#include <cstdint>

#include "vgpu/device.hpp"

namespace deco::core {
namespace {

std::uint64_t bitmask_hash(const std::vector<bool>& bits) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) h ^= 0x100000001b3ULL * (i + 1);
  }
  return h;
}

}  // namespace

EnsemblePlanner::EnsemblePlanner(const cloud::Catalog& catalog,
                                 const cloud::MetadataStore& store,
                                 vgpu::ComputeBackend& backend,
                                 EvalOptions eval, EstimatorOptions estimator)
    : catalog_(&catalog),
      store_(&store),
      backend_(&backend),
      eval_(eval),
      estimator_options_(estimator) {}

EnsemblePlanResult EnsemblePlanner::plan(const workflow::Ensemble& ensemble,
                                         const EnsemblePlanOptions& options) {
  EnsemblePlanResult result;
  const std::size_t n = ensemble.members.size();
  result.admitted.assign(n, false);
  result.plans.resize(n);
  result.member_costs.assign(n, 0);

  // Per-member cheapest deadline-feasible plan (once per member).  The
  // solves are independent; `score_member` writes only slot i (byte-wide
  // slots — vector<bool> would make concurrent writes race on shared words).
  std::vector<std::uint8_t> feasible(n, 0);
  std::vector<double> scores(n, 0);
  const auto score_member = [&](std::size_t i, vgpu::ComputeBackend& backend) {
    const auto& member = ensemble.members[i];
    scores[i] = std::pow(2.0, -member.priority);
    TaskTimeEstimator estimator(*catalog_, *store_, estimator_options_);
    SchedulingProblem problem(member.workflow, estimator, backend, eval_);
    ProbDeadline req;
    req.quantile = member.deadline_q / 100.0;
    req.deadline_s = member.deadline_s;
    const SchedulingResult sr = problem.solve(req, options.per_workflow);
    feasible[i] = sr.found;
    if (sr.found) {
      result.plans[i] = sr.plan;
      result.member_costs[i] = sr.evaluation.mean_cost;
    }
  };
  if (options.exec.pool != nullptr || options.exec.workers > 0) {
    // Sharded scoring: concurrent solves must not share the planner's
    // backend (launch state is mutable), so each run evaluates on a private
    // SerialBackend — bit-identical results by the vgpu contract.
    sim::EnsembleRunner runner(options.exec);
    runner.run(n, /*base_seed=*/0, [&](const sim::RunContext& ctx) {
      vgpu::SerialBackend backend;
      score_member(ctx.index, backend);
    });
  } else {
    for (std::size_t i = 0; i < n; ++i) score_member(i, *backend_);
  }

  // Admission search: maximize score subject to the budget.
  SearchCallbacks<std::vector<bool>> cb;
  cb.hash = bitmask_hash;
  auto cost_of = [&](const std::vector<bool>& bits) {
    double cost = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (bits[i]) cost += result.member_costs[i];
    }
    return cost;
  };
  auto score_of = [&](const std::vector<bool>& bits) {
    double score = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (bits[i]) score += scores[i];
    }
    return score;
  };
  cb.children = [&](const std::vector<bool>& bits) {
    std::vector<std::vector<bool>> children;
    for (std::size_t i = 0; i < n; ++i) {
      if (bits[i] || !feasible[i]) continue;
      std::vector<bool> child = bits;
      child[i] = true;
      // Children that already blow the budget are not generated at all
      // (cost is monotone in admissions).
      if (cost_of(child) <= ensemble.budget) children.push_back(std::move(child));
    }
    return children;
  };
  cb.evaluate = [&](std::span<const std::vector<bool>> states) {
    std::vector<Scored> out(states.size());
    for (std::size_t i = 0; i < states.size(); ++i) {
      out[i].feasible = cost_of(states[i]) <= ensemble.budget;
      out[i].objective = score_of(states[i]);
    }
    return out;
  };
  // A* per the paper: g = h = Score of the state.
  cb.g_score = score_of;
  cb.h_score = score_of;

  SearchOptions sopt = options.search;
  sopt.minimize = false;
  const auto found =
      astar_search(std::vector<bool>(n, false), cb, sopt);
  result.stats = found.stats;
  if (found.best) {
    result.admitted = *found.best;
  }
  result.total_cost = cost_of(result.admitted);
  result.score = score_of(result.admitted);
  for (std::size_t i = 0; i < n; ++i) {
    if (!result.admitted[i]) {
      result.plans[i] = sim::Plan{};
    }
  }
  return result;
}

}  // namespace deco::core
