#include "core/estimator.hpp"

#include <algorithm>
#include <mutex>

#include "cloud/calibration.hpp"

namespace deco::core {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

double mbps_to_bytes_per_s(double mbps) {
  return std::max(mbps, 1.0) * 1e6 / 8.0;
}

}  // namespace

TaskTimeEstimator::TaskTimeEstimator(const cloud::Catalog& catalog,
                                     const cloud::MetadataStore& store,
                                     EstimatorOptions options)
    : catalog_(&catalog), store_(&store), options_(std::move(options)) {}

namespace {
std::uint64_t cache_key(workflow::TaskId task, cloud::TypeId type) {
  return (static_cast<std::uint64_t>(task) << 8) |
         static_cast<std::uint64_t>(type);
}
}  // namespace

const util::Histogram& TaskTimeEstimator::distribution(
    const workflow::Workflow& wf, workflow::TaskId task, cloud::TypeId type) {
  const std::uint64_t key = cache_key(task, type);
  {
    std::shared_lock lock(cache_mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  std::unique_lock lock(cache_mutex_);
  if (const auto it = cache_.find(key); it != cache_.end()) return it->second;
  build(wf, task, type);
  return cache_.at(key);
}

const util::Histogram& TaskTimeEstimator::dynamic_distribution(
    const workflow::Workflow& wf, workflow::TaskId task, cloud::TypeId type) {
  const std::uint64_t key = cache_key(task, type);
  {
    std::shared_lock lock(cache_mutex_);
    const auto it = dyn_cache_.find(key);
    if (it != dyn_cache_.end()) return it->second;
  }
  std::unique_lock lock(cache_mutex_);
  if (const auto it = dyn_cache_.find(key); it != dyn_cache_.end()) {
    return it->second;
  }
  build(wf, task, type);
  return dyn_cache_.at(key);
}

double TaskTimeEstimator::cpu_time(const workflow::Workflow& wf,
                                   workflow::TaskId task,
                                   cloud::TypeId type) const {
  return wf.task(task).cpu_seconds /
         std::max(catalog_->type(type).per_core_units, 0.1);
}

double TaskTimeEstimator::mean_time(const workflow::Workflow& wf,
                                    workflow::TaskId task,
                                    cloud::TypeId type) {
  return distribution(wf, task, type).mean();
}

double TaskTimeEstimator::percentile_time(const workflow::Workflow& wf,
                                          workflow::TaskId task,
                                          cloud::TypeId type, double q) {
  return distribution(wf, task, type).percentile(q);
}

void TaskTimeEstimator::build(const workflow::Workflow& wf,
                              workflow::TaskId task, cloud::TypeId type) {
  const workflow::Task& t = wf.task(task);
  const cloud::InstanceType& vm = catalog_->type(type);
  const double cpu = cpu_time(wf, task, type);

  const auto seq =
      store_->get(cloud::MetadataStore::seq_io_key(options_.provider, vm.name));
  const auto rnd =
      store_->get(cloud::MetadataStore::rand_io_key(options_.provider, vm.name));
  // Network: the parents' instance types are unknown at estimation time, so
  // assume the *slowest* possible partner NIC (the pair with the cheapest
  // type).  Conservative by design: plans promise deadlines they can keep.
  const auto net = store_->get(cloud::MetadataStore::net_key(
      options_.provider, vm.name, catalog_->type(0).name));

  double net_bytes = 0;
  if (options_.include_network) {
    for (const workflow::Edge& e : wf.edges()) {
      if (e.child == task) net_bytes += e.bytes;
    }
  }
  const double io_bytes = t.input_bytes + t.output_bytes;

  // Seed per (task, type) so the cache content does not depend on call order.
  util::Rng rng(options_.seed ^ (static_cast<std::uint64_t>(task) * 0x9E37 +
                                 static_cast<std::uint64_t>(type)));
  std::vector<double> dynamic;
  std::vector<double> total;
  dynamic.reserve(options_.convolution_samples);
  total.reserve(options_.convolution_samples);
  for (std::size_t i = 0; i < options_.convolution_samples; ++i) {
    double dyn = 0;
    if (seq && io_bytes > 0) {
      dyn += io_bytes / (std::max(seq->sample(rng), 1.0) * kMB);
    }
    if (rnd && options_.rand_io_ops_per_task > 0) {
      dyn += options_.rand_io_ops_per_task / std::max(rnd->sample(rng), 1.0);
    }
    if (net && net_bytes > 0) {
      dyn += net_bytes / mbps_to_bytes_per_s(net->sample(rng));
    }
    dynamic.push_back(dyn);
    total.push_back(cpu + dyn);
  }
  const std::uint64_t key = cache_key(task, type);
  cache_[key] = util::Histogram::from_samples(total, options_.histogram_bins);
  dyn_cache_[key] =
      util::Histogram::from_samples(dynamic, options_.histogram_bins);
}

cloud::MetadataStore make_store_from_catalog(const cloud::Catalog& catalog,
                                             const std::string& provider,
                                             std::size_t samples,
                                             std::size_t bins,
                                             std::uint64_t seed) {
  cloud::MetadataStore store;
  cloud::CalibrationOptions opt;
  opt.provider = provider;
  opt.samples_per_setting = samples;
  opt.histogram_bins = bins;
  util::Rng rng(seed);
  cloud::calibrate(catalog, store, opt, rng);
  return store;
}

}  // namespace deco::core
