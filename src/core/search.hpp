// Parallel solver: generic search (Algorithm 2) and A* search (Section 5.3).
//
// The solver is generic over the state type: the workflow-scheduling problem
// searches instance-configuration plans, the ensemble problem searches
// admission vectors, follow-the-cost searches migration vectors.  States are
// evaluated in *batches* so the backend can assign one block per state —
// "we use N thread blocks to search the solution space at the same time".
// Exploration (breadth-first) is chosen over exploitation for parallelism,
// exactly as Section 5.3 argues.
//
// Pipelined driver: while a batch evaluates on a background thread, the
// driver speculatively generates the batch's children, hashes (and, in A*
// mode, f-scores) them — i.e. wave k+1's frontier is built while wave k is
// still on the device.  Speculation never touches the visited set or the
// frontier; children are *committed* only after the scores arrive, in batch
// order, exactly as the serial driver would — so results, visited-set
// evolution and every SearchStats counter are bit-identical with pipelining
// on or off (tests/core/search_test.cpp pins this).  The time the driver
// still blocks on evaluation after speculation is reported as
// SearchStats::eval_stall_ms; it is the number to watch when sizing batches.
//
// Thread-safety contract for pipelining: children / hash / g_score / h_score
// must be safe to call concurrently with evaluate (they may not share
// unsynchronized mutable state with it).  Every in-repo problem satisfies
// this — TaskTimeEstimator, the only shared mutable dependency, is
// internally synchronized.  Set SearchOptions::pipeline = false for
// callbacks that cannot meet the contract.
//
// A* mode: when the user supplies g/h scores (cal_g_score / est_h_score in
// WLog, or native callbacks here), states are expanded best-first and any
// state whose g score already exceeds the best found feasible objective is
// pruned — valid whenever children cannot improve on their parent (the
// monotone-cost property the paper exploits: "child states configure tasks
// with better instance types and thus always generate higher cost").
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <limits>
#include <optional>
#include <queue>
#include <span>
#include <unordered_set>
#include <vector>

#include "obs/obs.hpp"
#include "util/budget.hpp"

namespace deco::core {

struct Scored {
  bool feasible = false;
  double objective = 0;
};

struct SearchOptions {
  std::size_t max_states = 4096;   ///< evaluation budget
  std::size_t batch_size = 32;     ///< states per backend launch
  bool minimize = true;
  /// Children never have a better objective than their parent; enables
  /// bound pruning against the incumbent.
  bool monotone_objective = false;
  /// Stop as soon as `early_stop_depth` consecutive expansion waves bring no
  /// incumbent improvement (0 = run the full budget).
  std::size_t stale_wave_limit = 0;
  /// Overlap child generation/hashing with batch evaluation on a background
  /// thread (see the thread-safety contract above).  Results are
  /// bit-identical either way.
  bool pipeline = true;
  /// Cap on the dedup (visited) set: 0 = unlimited; otherwise the oldest
  /// hashes are evicted FIFO once the cap is reached, so million-state runs
  /// hold O(max_visited) memory.  A re-generated evicted state is treated as
  /// new (re-evaluated) — a work/memory trade, counted in
  /// SearchStats::visited_evicted.  Size to max_states * branching to make
  /// eviction a pure safety valve.
  std::size_t max_visited = 0;
  /// Optional per-solve budget (borrowed, may be null).  Checked at wave
  /// boundaries and inside the speculative generation loop; a fired budget
  /// discards the partially evaluated wave and returns the incumbent as an
  /// anytime result (SearchResult::budget).  A budget that never fires is
  /// behavior-neutral: checkpoints only read, so results stay bit-identical
  /// to an unbudgeted run.
  util::BudgetTracker* budget = nullptr;
};

/// Search-effort accounting, filled identically by both the breadth-first
/// and the A* path (tests/core/search_test.cpp pins the invariants):
///   * every evaluated state is counted in states_evaluated;
///   * states_expanded counts states whose children were generated
///     (evaluated minus pruned, minus states cut off by budget/early stop);
///   * states_pruned counts bound-pruned states (generic: post-evaluation
///     bound prune; A*: additionally pop-time incumbent pruning);
///   * duplicate_hits counts children rejected by the visited set;
///   * visited_evicted counts hashes dropped by the max_visited FIFO cap;
///   * eval_stall_ms is the time the driver spent blocked on batch
///     evaluation (with pipelining: after speculative child generation ran
///     out of overlap work; without: the whole evaluate call).
struct SearchStats {
  std::size_t states_evaluated = 0;
  std::size_t states_expanded = 0;
  std::size_t states_pruned = 0;
  std::size_t duplicate_hits = 0;
  std::size_t visited_evicted = 0;
  std::size_t waves = 0;
  double elapsed_ms = 0;
  double eval_stall_ms = 0;
};

namespace detail {

/// Publishes one finished search's stats to the metrics registry.
inline void record_search_metrics(const char* kind, const SearchStats& stats) {
  DECO_OBS_COUNTER_ADD("search.runs", 1);
  DECO_OBS_COUNTER_ADD("search.states_evaluated", stats.states_evaluated);
  DECO_OBS_COUNTER_ADD("search.states_expanded", stats.states_expanded);
  DECO_OBS_COUNTER_ADD("search.states_pruned", stats.states_pruned);
  DECO_OBS_COUNTER_ADD("search.duplicate_hits", stats.duplicate_hits);
  DECO_OBS_COUNTER_ADD("search.visited_evicted", stats.visited_evicted);
  DECO_OBS_COUNTER_ADD("search.waves", stats.waves);
  DECO_OBS_HIST_MS(kind, stats.elapsed_ms);
  DECO_OBS_HIST_MS("search.eval_stall_ms", stats.eval_stall_ms);
#if defined(DECO_OBS_DISABLED)
  (void)kind;
  (void)stats;
#endif
}

}  // namespace detail

template <typename State>
struct SearchCallbacks {
  std::function<std::vector<State>(const State&)> children;
  std::function<std::uint64_t(const State&)> hash;
  std::function<std::vector<Scored>(std::span<const State>)> evaluate;
  /// A* heuristics; both null selects the generic search.
  std::function<double(const State&)> g_score;
  std::function<double(const State&)> h_score;
};

template <typename State>
struct SearchResult {
  std::optional<State> best;
  Scored best_score;
  SearchStats stats;
  /// Budget outcome: all-zero for unbudgeted runs; budget_exhausted set when
  /// the search was cut and `best` is the anytime incumbent.
  util::SolveReport budget;
};

namespace detail {

inline bool better(double candidate, double incumbent, bool minimize) {
  return minimize ? candidate < incumbent : candidate > incumbent;
}

/// Dedup set with an optional FIFO capacity bound: past the cap, the oldest
/// inserted hash is evicted for every new one.  Eviction order is a pure
/// function of insertion order, so bounded runs stay deterministic.
///
/// `track_order` keeps the insertion-order ring even for unbounded sets so a
/// memory budget can later shrink_to() them; unbudgeted unbounded sets skip
/// the ring entirely (identical to the pre-budget behavior).
class VisitedSet {
 public:
  explicit VisitedSet(std::size_t capacity, bool track_order = false)
      : capacity_(capacity), track_order_(track_order) {}

  /// True if `h` was newly inserted; false if it was already present.
  bool insert(std::uint64_t h) {
    if (!set_.insert(h).second) return false;
    if (capacity_ == 0) {
      if (track_order_) ring_.push_back(h);
      return true;
    }
    if (ring_.size() < capacity_) {
      ring_.push_back(h);
      return true;
    }
    set_.erase(ring_[head_]);
    ring_[head_] = h;
    head_ = (head_ + 1) % capacity_;
    ++evicted_;
    return true;
  }

  std::size_t evicted() const { return evicted_; }
  std::size_t size() const { return set_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Approximate resident bytes: hash-set nodes (bucket array + node heap
  /// allocations, ~40 B per entry on mainstream libstdc++) plus the ring.
  std::size_t bytes() const {
    return set_.size() * 40 + ring_.capacity() * sizeof(std::uint64_t);
  }

  /// Memory-pressure degradation: FIFO-evicts the oldest hashes until at
  /// most `new_capacity` remain and caps the set there.  Requires insertion
  /// order (a bounded set, or track_order) — otherwise a no-op.  Evictions
  /// count into evicted(); dedup afterwards is exactly what a set built with
  /// the smaller cap would do from this point on.
  void shrink_to(std::size_t new_capacity) {
    new_capacity = std::max<std::size_t>(new_capacity, 1);
    if (capacity_ == 0 && !track_order_) return;  // no order to evict by
    // Linearize oldest-first: a wrapped bounded ring starts at head_; an
    // unwrapped or unbounded ring is already in insertion order.
    std::vector<std::uint64_t> live;
    live.reserve(ring_.size());
    if (capacity_ != 0 && ring_.size() == capacity_ && head_ != 0) {
      for (std::size_t i = 0; i < ring_.size(); ++i) {
        live.push_back(ring_[(head_ + i) % ring_.size()]);
      }
    } else {
      live = ring_;
    }
    const std::size_t drop =
        live.size() > new_capacity ? live.size() - new_capacity : 0;
    for (std::size_t i = 0; i < drop; ++i) set_.erase(live[i]);
    evicted_ += drop;
    ring_.assign(live.begin() + static_cast<std::ptrdiff_t>(drop), live.end());
    ring_.shrink_to_fit();
    head_ = 0;
    capacity_ = new_capacity;
  }

 private:
  std::size_t capacity_;
  bool track_order_;
  std::unordered_set<std::uint64_t> set_;
  std::vector<std::uint64_t> ring_;  // insertion order, reused circularly
  std::size_t head_ = 0;
  std::size_t evicted_ = 0;
};

/// Wave-boundary budget service, shared by both drivers.  Publishes the
/// visited set's bytes, honors a pending shrink request from the evaluator's
/// degradation ladder (halving down to `floor`; firing kMemory once the
/// floor cannot satisfy the cap), and returns true when the solve must stop.
/// With a null or never-firing budget this reads state and changes nothing.
inline bool service_budget(util::BudgetTracker* budget, VisitedSet& visited,
                           std::size_t floor) {
  if (budget == nullptr) return false;
  using Component = util::BudgetTracker::Component;
  if (budget->active() && budget->memory_budget() > 0) {
    budget->set_bytes(Component::kVisited, visited.bytes());
    if (budget->consume_visited_shrink_request()) {
      const std::size_t target = std::max(floor, visited.size() / 2);
      if (visited.size() > target) {
        const std::size_t before = visited.evicted();
        visited.shrink_to(target);
        DECO_OBS_COUNTER_ADD("budget.evictions.visited",
                             visited.evicted() - before);
      } else {
        // The set is already at the floor: the degradation ladder is out of
        // things to evict, so memory pressure becomes a cutoff.
        budget->fire(util::BudgetTrigger::kMemory);
      }
      budget->set_bytes(Component::kVisited, visited.bytes());
    }
  }
  return budget->should_stop();
}

/// Finalizes SearchResult::budget and clears the visited gauge (the set dies
/// with the driver's stack frame).
inline util::SolveReport finish_budget(util::BudgetTracker* budget,
                                       std::size_t states_evaluated) {
  if (budget == nullptr) return {};
  const util::SolveReport report = budget->report(states_evaluated);
  budget->set_bytes(util::BudgetTracker::Component::kVisited, 0);
  return report;
}

/// One wave's speculative products: children and their hashes (A* adds f
/// scores), generated while the wave's evaluation is in flight.
template <typename State>
struct Speculation {
  std::vector<std::vector<State>> children;
  std::vector<std::vector<std::uint64_t>> hashes;
  std::vector<std::vector<double>> f_scores;  // A* only
};

/// Evaluates `batch`, overlapping cb.children / cb.hash (and f scoring when
/// `f_of` is non-null) with the evaluation when options.pipeline is set.
/// Returns the scores; fills `spec` with the batch's speculative children.
/// Stall time — the wait on the evaluation after speculation finished — is
/// accumulated into `stall_ms`.
template <typename State, typename FScore>
std::vector<Scored> evaluate_wave(const SearchCallbacks<State>& cb,
                                  const SearchOptions& options,
                                  const std::vector<State>& batch,
                                  const FScore* f_of, Speculation<State>& spec,
                                  double& stall_ms) {
  using clock = std::chrono::steady_clock;
  spec.children.assign(batch.size(), {});
  spec.hashes.assign(batch.size(), {});
  spec.f_scores.assign(batch.size(), {});
  if (!options.pipeline) {
    const auto t0 = clock::now();
    std::vector<Scored> scores =
        cb.evaluate(std::span<const State>(batch));
    stall_ms +=
        std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    return scores;
  }
  std::future<std::vector<Scored>> pending = std::async(
      std::launch::async,
      [&cb, &batch] { return cb.evaluate(std::span<const State>(batch)); });
  bool speculation_cut = false;
  try {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      // A fired budget ends speculation: the wave is about to be discarded,
      // so generating more children is wasted work.  The evaluation is still
      // drained below (it observes the same budget through its own
      // checkpoints), keeping the background thread's exit clean.
      if (options.budget != nullptr && options.budget->should_stop()) {
        speculation_cut = true;
        break;
      }
      spec.children[i] = cb.children(batch[i]);
      auto& hashes = spec.hashes[i];
      hashes.reserve(spec.children[i].size());
      for (const State& child : spec.children[i]) {
        hashes.push_back(cb.hash(child));
      }
      if (f_of != nullptr) {
        auto& fs = spec.f_scores[i];
        fs.reserve(spec.children[i].size());
        for (const State& child : spec.children[i]) {
          fs.push_back((*f_of)(child));
        }
      }
    }
  } catch (...) {
    // The in-flight evaluation borrows `batch`; never unwind past it.
    pending.wait();
    throw;
  }
  const auto t0 = clock::now();
  // Rethrows a BudgetExhaustedError raised inside the evaluation on the
  // driver thread — the cancellation path out of the background evaluation.
  std::vector<Scored> scores = pending.get();
  stall_ms +=
      std::chrono::duration<double, std::milli>(clock::now() - t0).count();
  if (speculation_cut) {
    // The evaluation finished between budget checkpoints, but speculation is
    // incomplete; committing a partial wave would diverge from the serial
    // driver, so the cut wave is abandoned wholesale.
    throw util::BudgetExhaustedError(options.budget->trigger());
  }
  return scores;
}

}  // namespace detail

/// Breadth-first generic search with batched, pipelined evaluation
/// (Algorithm 2).
template <typename State>
SearchResult<State> generic_search(const State& initial,
                                   const SearchCallbacks<State>& cb,
                                   const SearchOptions& options) {
  DECO_OBS_SPAN("search", "generic_search");
  const auto t0 = std::chrono::steady_clock::now();
  SearchResult<State> result;
  const bool meter_memory =
      options.budget != nullptr && options.budget->active() &&
      options.budget->memory_budget() > 0;
  detail::VisitedSet visited(options.max_visited, meter_memory);
  const std::size_t visited_floor =
      std::max<std::size_t>(options.batch_size, 64);
  std::queue<State> frontier;
  frontier.push(initial);
  visited.insert(cb.hash(initial));

  double bound = options.minimize ? std::numeric_limits<double>::infinity()
                                  : -std::numeric_limits<double>::infinity();
  std::size_t stale_waves = 0;
  detail::Speculation<State> spec;

  while (!frontier.empty() &&
         result.stats.states_evaluated < options.max_states) {
    if (detail::service_budget(options.budget, visited, visited_floor)) break;
    // Pull one batch off the FIFO queue.
    std::vector<State> batch;
    while (!frontier.empty() && batch.size() < options.batch_size &&
           result.stats.states_evaluated + batch.size() < options.max_states) {
      batch.push_back(std::move(frontier.front()));
      frontier.pop();
    }
    // Child generation for this wave overlaps its evaluation (no f scoring
    // in breadth-first mode).
    const std::function<double(const State&)>* no_f = nullptr;
    std::vector<Scored> scores;
    try {
      scores = detail::evaluate_wave(cb, options, batch, no_f, spec,
                                     result.stats.eval_stall_ms);
    } catch (const util::BudgetExhaustedError&) {
      // Anytime cut: the partially evaluated wave is discarded — its scores
      // were never committed — and the incumbent stands.
      break;
    }
    result.stats.states_evaluated += batch.size();
    ++result.stats.waves;
    bool improved = false;

    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Scored& s = scores[i];
      if (s.feasible &&
          (!result.best || detail::better(s.objective, bound, options.minimize))) {
        result.best = batch[i];
        result.best_score = s;
        bound = s.objective;
        improved = true;
      }
      // Bound prune: with a monotone objective, a state already worse than
      // the incumbent cannot lead to a better feasible descendant.  Its
      // speculative children are simply dropped.
      if (options.monotone_objective && result.best &&
          !detail::better(s.objective, bound, options.minimize)) {
        ++result.stats.states_pruned;
        continue;
      }
      ++result.stats.states_expanded;
      if (!options.pipeline) {
        spec.children[i] = cb.children(batch[i]);
        spec.hashes[i].clear();
        for (const State& child : spec.children[i]) {
          spec.hashes[i].push_back(cb.hash(child));
        }
      }
      for (std::size_t c = 0; c < spec.children[i].size(); ++c) {
        if (visited.insert(spec.hashes[i][c])) {
          frontier.push(std::move(spec.children[i][c]));
        } else {
          ++result.stats.duplicate_hits;
        }
      }
    }
    stale_waves = improved ? 0 : stale_waves + 1;
    if (options.stale_wave_limit > 0 && result.best &&
        stale_waves >= options.stale_wave_limit) {
      break;
    }
  }
  result.stats.visited_evicted = visited.evicted();
  result.stats.elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  result.budget =
      detail::finish_budget(options.budget, result.stats.states_evaluated);
  detail::record_search_metrics("search.generic_ms", result.stats);
  return result;
}

/// Best-first A* search using the user's g/h scores for ordering + pruning.
template <typename State>
SearchResult<State> astar_search(const State& initial,
                                 const SearchCallbacks<State>& cb,
                                 const SearchOptions& options) {
  DECO_OBS_SPAN("search", "astar_search");
  const auto t0 = std::chrono::steady_clock::now();
  SearchResult<State> result;

  struct Entry {
    State state;
    double f;
  };
  const double sign = options.minimize ? 1.0 : -1.0;
  auto worse = [sign](const Entry& a, const Entry& b) {
    return sign * a.f > sign * b.f;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> open(worse);
  const bool meter_memory =
      options.budget != nullptr && options.budget->active() &&
      options.budget->memory_budget() > 0;
  detail::VisitedSet visited(options.max_visited, meter_memory);
  const std::size_t visited_floor =
      std::max<std::size_t>(options.batch_size, 64);

  auto f_of = [&](const State& s) {
    const double g = cb.g_score ? cb.g_score(s) : 0;
    const double h = cb.h_score ? cb.h_score(s) : 0;
    return g + h;
  };
  // The g/h scorers may themselves observe the budget (e.g. WLog
  // interpreters); a cut before the first state is scored yields an empty
  // anytime result rather than an escaping exception.
  bool budget_cut = false;
  try {
    open.push(Entry{initial, f_of(initial)});
  } catch (const util::BudgetExhaustedError&) {
    budget_cut = true;
  }
  visited.insert(cb.hash(initial));

  double bound = options.minimize ? std::numeric_limits<double>::infinity()
                                  : -std::numeric_limits<double>::infinity();
  std::size_t stale_waves = 0;
  detail::Speculation<State> spec;

  while (!budget_cut && !open.empty() &&
         result.stats.states_evaluated < options.max_states) {
    if (detail::service_budget(options.budget, visited, visited_floor)) break;
    std::vector<State> batch;
    while (!open.empty() && batch.size() < options.batch_size &&
           result.stats.states_evaluated + batch.size() < options.max_states) {
      Entry e = open.top();
      open.pop();
      // Prune against the incumbent: "by not placing the states with high g
      // and h scores into the candidate list".
      if (result.best && !detail::better(e.f, bound, options.minimize)) {
        ++result.stats.states_pruned;
        continue;
      }
      batch.push_back(std::move(e.state));
    }
    if (batch.empty()) break;
    // Child generation, hashing and f-scoring for this wave overlap its
    // evaluation.
    std::vector<Scored> scores;
    try {
      scores = detail::evaluate_wave(cb, options, batch, &f_of, spec,
                                     result.stats.eval_stall_ms);
    } catch (const util::BudgetExhaustedError&) {
      break;  // anytime cut — the incumbent stands, the wave is discarded
    }
    result.stats.states_evaluated += batch.size();
    ++result.stats.waves;
    bool improved = false;

    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Scored& s = scores[i];
      if (s.feasible &&
          (!result.best || detail::better(s.objective, bound, options.minimize))) {
        result.best = batch[i];
        result.best_score = s;
        bound = s.objective;
        improved = true;
      }
      ++result.stats.states_expanded;
      if (!options.pipeline) {
        try {
          spec.children[i] = cb.children(batch[i]);
          spec.hashes[i].clear();
          spec.f_scores[i].clear();
          for (const State& child : spec.children[i]) {
            spec.hashes[i].push_back(cb.hash(child));
            spec.f_scores[i].push_back(f_of(child));
          }
        } catch (const util::BudgetExhaustedError&) {
          // Incumbent updates up to here stand; the rest of the wave's
          // children are dropped and the search ends anytime-style.
          budget_cut = true;
          break;
        }
      }
      for (std::size_t c = 0; c < spec.children[i].size(); ++c) {
        if (visited.insert(spec.hashes[i][c])) {
          const double f = spec.f_scores[i][c];
          if (result.best && options.monotone_objective &&
              !detail::better(f, bound, options.minimize)) {
            ++result.stats.states_pruned;
            continue;
          }
          open.push(Entry{std::move(spec.children[i][c]), f});
        } else {
          ++result.stats.duplicate_hits;
        }
      }
    }
    stale_waves = improved ? 0 : stale_waves + 1;
    if (options.stale_wave_limit > 0 && result.best &&
        stale_waves >= options.stale_wave_limit) {
      break;
    }
  }
  result.stats.visited_evicted = visited.evicted();
  result.stats.elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  result.budget =
      detail::finish_budget(options.budget, result.stats.states_evaluated);
  detail::record_search_metrics("search.astar_ms", result.stats);
  return result;
}

}  // namespace deco::core
