// Parallel solver: generic search (Algorithm 2) and A* search (Section 5.3).
//
// The solver is generic over the state type: the workflow-scheduling problem
// searches instance-configuration plans, the ensemble problem searches
// admission vectors, follow-the-cost searches migration vectors.  States are
// evaluated in *batches* so the backend can assign one block per state —
// "we use N thread blocks to search the solution space at the same time".
// Exploration (breadth-first) is chosen over exploitation for parallelism,
// exactly as Section 5.3 argues.
//
// Pipelined driver: while a batch evaluates on a background thread, the
// driver speculatively generates the batch's children, hashes (and, in A*
// mode, f-scores) them — i.e. wave k+1's frontier is built while wave k is
// still on the device.  Speculation never touches the visited set or the
// frontier; children are *committed* only after the scores arrive, in batch
// order, exactly as the serial driver would — so results, visited-set
// evolution and every SearchStats counter are bit-identical with pipelining
// on or off (tests/core/search_test.cpp pins this).  The time the driver
// still blocks on evaluation after speculation is reported as
// SearchStats::eval_stall_ms; it is the number to watch when sizing batches.
//
// Thread-safety contract for pipelining: children / hash / g_score / h_score
// must be safe to call concurrently with evaluate (they may not share
// unsynchronized mutable state with it).  Every in-repo problem satisfies
// this — TaskTimeEstimator, the only shared mutable dependency, is
// internally synchronized.  Set SearchOptions::pipeline = false for
// callbacks that cannot meet the contract.
//
// A* mode: when the user supplies g/h scores (cal_g_score / est_h_score in
// WLog, or native callbacks here), states are expanded best-first and any
// state whose g score already exceeds the best found feasible objective is
// pruned — valid whenever children cannot improve on their parent (the
// monotone-cost property the paper exploits: "child states configure tasks
// with better instance types and thus always generate higher cost").
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <limits>
#include <optional>
#include <queue>
#include <span>
#include <unordered_set>
#include <vector>

#include "obs/obs.hpp"

namespace deco::core {

struct Scored {
  bool feasible = false;
  double objective = 0;
};

struct SearchOptions {
  std::size_t max_states = 4096;   ///< evaluation budget
  std::size_t batch_size = 32;     ///< states per backend launch
  bool minimize = true;
  /// Children never have a better objective than their parent; enables
  /// bound pruning against the incumbent.
  bool monotone_objective = false;
  /// Stop as soon as `early_stop_depth` consecutive expansion waves bring no
  /// incumbent improvement (0 = run the full budget).
  std::size_t stale_wave_limit = 0;
  /// Overlap child generation/hashing with batch evaluation on a background
  /// thread (see the thread-safety contract above).  Results are
  /// bit-identical either way.
  bool pipeline = true;
  /// Cap on the dedup (visited) set: 0 = unlimited; otherwise the oldest
  /// hashes are evicted FIFO once the cap is reached, so million-state runs
  /// hold O(max_visited) memory.  A re-generated evicted state is treated as
  /// new (re-evaluated) — a work/memory trade, counted in
  /// SearchStats::visited_evicted.  Size to max_states * branching to make
  /// eviction a pure safety valve.
  std::size_t max_visited = 0;
};

/// Search-effort accounting, filled identically by both the breadth-first
/// and the A* path (tests/core/search_test.cpp pins the invariants):
///   * every evaluated state is counted in states_evaluated;
///   * states_expanded counts states whose children were generated
///     (evaluated minus pruned, minus states cut off by budget/early stop);
///   * states_pruned counts bound-pruned states (generic: post-evaluation
///     bound prune; A*: additionally pop-time incumbent pruning);
///   * duplicate_hits counts children rejected by the visited set;
///   * visited_evicted counts hashes dropped by the max_visited FIFO cap;
///   * eval_stall_ms is the time the driver spent blocked on batch
///     evaluation (with pipelining: after speculative child generation ran
///     out of overlap work; without: the whole evaluate call).
struct SearchStats {
  std::size_t states_evaluated = 0;
  std::size_t states_expanded = 0;
  std::size_t states_pruned = 0;
  std::size_t duplicate_hits = 0;
  std::size_t visited_evicted = 0;
  std::size_t waves = 0;
  double elapsed_ms = 0;
  double eval_stall_ms = 0;
};

namespace detail {

/// Publishes one finished search's stats to the metrics registry.
inline void record_search_metrics(const char* kind, const SearchStats& stats) {
  DECO_OBS_COUNTER_ADD("search.runs", 1);
  DECO_OBS_COUNTER_ADD("search.states_evaluated", stats.states_evaluated);
  DECO_OBS_COUNTER_ADD("search.states_expanded", stats.states_expanded);
  DECO_OBS_COUNTER_ADD("search.states_pruned", stats.states_pruned);
  DECO_OBS_COUNTER_ADD("search.duplicate_hits", stats.duplicate_hits);
  DECO_OBS_COUNTER_ADD("search.visited_evicted", stats.visited_evicted);
  DECO_OBS_COUNTER_ADD("search.waves", stats.waves);
  DECO_OBS_HIST_MS(kind, stats.elapsed_ms);
  DECO_OBS_HIST_MS("search.eval_stall_ms", stats.eval_stall_ms);
#if defined(DECO_OBS_DISABLED)
  (void)kind;
  (void)stats;
#endif
}

}  // namespace detail

template <typename State>
struct SearchCallbacks {
  std::function<std::vector<State>(const State&)> children;
  std::function<std::uint64_t(const State&)> hash;
  std::function<std::vector<Scored>(std::span<const State>)> evaluate;
  /// A* heuristics; both null selects the generic search.
  std::function<double(const State&)> g_score;
  std::function<double(const State&)> h_score;
};

template <typename State>
struct SearchResult {
  std::optional<State> best;
  Scored best_score;
  SearchStats stats;
};

namespace detail {

inline bool better(double candidate, double incumbent, bool minimize) {
  return minimize ? candidate < incumbent : candidate > incumbent;
}

/// Dedup set with an optional FIFO capacity bound: past the cap, the oldest
/// inserted hash is evicted for every new one.  Eviction order is a pure
/// function of insertion order, so bounded runs stay deterministic.
class VisitedSet {
 public:
  explicit VisitedSet(std::size_t capacity) : capacity_(capacity) {}

  /// True if `h` was newly inserted; false if it was already present.
  bool insert(std::uint64_t h) {
    if (!set_.insert(h).second) return false;
    if (capacity_ == 0) return true;
    if (ring_.size() < capacity_) {
      ring_.push_back(h);
      return true;
    }
    set_.erase(ring_[head_]);
    ring_[head_] = h;
    head_ = (head_ + 1) % capacity_;
    ++evicted_;
    return true;
  }

  std::size_t evicted() const { return evicted_; }

 private:
  std::size_t capacity_;
  std::unordered_set<std::uint64_t> set_;
  std::vector<std::uint64_t> ring_;  // insertion order, reused circularly
  std::size_t head_ = 0;
  std::size_t evicted_ = 0;
};

/// One wave's speculative products: children and their hashes (A* adds f
/// scores), generated while the wave's evaluation is in flight.
template <typename State>
struct Speculation {
  std::vector<std::vector<State>> children;
  std::vector<std::vector<std::uint64_t>> hashes;
  std::vector<std::vector<double>> f_scores;  // A* only
};

/// Evaluates `batch`, overlapping cb.children / cb.hash (and f scoring when
/// `f_of` is non-null) with the evaluation when options.pipeline is set.
/// Returns the scores; fills `spec` with the batch's speculative children.
/// Stall time — the wait on the evaluation after speculation finished — is
/// accumulated into `stall_ms`.
template <typename State, typename FScore>
std::vector<Scored> evaluate_wave(const SearchCallbacks<State>& cb,
                                  const SearchOptions& options,
                                  const std::vector<State>& batch,
                                  const FScore* f_of, Speculation<State>& spec,
                                  double& stall_ms) {
  using clock = std::chrono::steady_clock;
  spec.children.assign(batch.size(), {});
  spec.hashes.assign(batch.size(), {});
  spec.f_scores.assign(batch.size(), {});
  if (!options.pipeline) {
    const auto t0 = clock::now();
    std::vector<Scored> scores =
        cb.evaluate(std::span<const State>(batch));
    stall_ms +=
        std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    return scores;
  }
  std::future<std::vector<Scored>> pending = std::async(
      std::launch::async,
      [&cb, &batch] { return cb.evaluate(std::span<const State>(batch)); });
  try {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      spec.children[i] = cb.children(batch[i]);
      auto& hashes = spec.hashes[i];
      hashes.reserve(spec.children[i].size());
      for (const State& child : spec.children[i]) {
        hashes.push_back(cb.hash(child));
      }
      if (f_of != nullptr) {
        auto& fs = spec.f_scores[i];
        fs.reserve(spec.children[i].size());
        for (const State& child : spec.children[i]) {
          fs.push_back((*f_of)(child));
        }
      }
    }
  } catch (...) {
    // The in-flight evaluation borrows `batch`; never unwind past it.
    pending.wait();
    throw;
  }
  const auto t0 = clock::now();
  std::vector<Scored> scores = pending.get();
  stall_ms +=
      std::chrono::duration<double, std::milli>(clock::now() - t0).count();
  return scores;
}

}  // namespace detail

/// Breadth-first generic search with batched, pipelined evaluation
/// (Algorithm 2).
template <typename State>
SearchResult<State> generic_search(const State& initial,
                                   const SearchCallbacks<State>& cb,
                                   const SearchOptions& options) {
  DECO_OBS_SPAN("search", "generic_search");
  const auto t0 = std::chrono::steady_clock::now();
  SearchResult<State> result;
  detail::VisitedSet visited(options.max_visited);
  std::queue<State> frontier;
  frontier.push(initial);
  visited.insert(cb.hash(initial));

  double bound = options.minimize ? std::numeric_limits<double>::infinity()
                                  : -std::numeric_limits<double>::infinity();
  std::size_t stale_waves = 0;
  detail::Speculation<State> spec;

  while (!frontier.empty() &&
         result.stats.states_evaluated < options.max_states) {
    // Pull one batch off the FIFO queue.
    std::vector<State> batch;
    while (!frontier.empty() && batch.size() < options.batch_size &&
           result.stats.states_evaluated + batch.size() < options.max_states) {
      batch.push_back(std::move(frontier.front()));
      frontier.pop();
    }
    // Child generation for this wave overlaps its evaluation (no f scoring
    // in breadth-first mode).
    const std::function<double(const State&)>* no_f = nullptr;
    const std::vector<Scored> scores = detail::evaluate_wave(
        cb, options, batch, no_f, spec, result.stats.eval_stall_ms);
    result.stats.states_evaluated += batch.size();
    ++result.stats.waves;
    bool improved = false;

    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Scored& s = scores[i];
      if (s.feasible &&
          (!result.best || detail::better(s.objective, bound, options.minimize))) {
        result.best = batch[i];
        result.best_score = s;
        bound = s.objective;
        improved = true;
      }
      // Bound prune: with a monotone objective, a state already worse than
      // the incumbent cannot lead to a better feasible descendant.  Its
      // speculative children are simply dropped.
      if (options.monotone_objective && result.best &&
          !detail::better(s.objective, bound, options.minimize)) {
        ++result.stats.states_pruned;
        continue;
      }
      ++result.stats.states_expanded;
      if (!options.pipeline) {
        spec.children[i] = cb.children(batch[i]);
        spec.hashes[i].clear();
        for (const State& child : spec.children[i]) {
          spec.hashes[i].push_back(cb.hash(child));
        }
      }
      for (std::size_t c = 0; c < spec.children[i].size(); ++c) {
        if (visited.insert(spec.hashes[i][c])) {
          frontier.push(std::move(spec.children[i][c]));
        } else {
          ++result.stats.duplicate_hits;
        }
      }
    }
    stale_waves = improved ? 0 : stale_waves + 1;
    if (options.stale_wave_limit > 0 && result.best &&
        stale_waves >= options.stale_wave_limit) {
      break;
    }
  }
  result.stats.visited_evicted = visited.evicted();
  result.stats.elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  detail::record_search_metrics("search.generic_ms", result.stats);
  return result;
}

/// Best-first A* search using the user's g/h scores for ordering + pruning.
template <typename State>
SearchResult<State> astar_search(const State& initial,
                                 const SearchCallbacks<State>& cb,
                                 const SearchOptions& options) {
  DECO_OBS_SPAN("search", "astar_search");
  const auto t0 = std::chrono::steady_clock::now();
  SearchResult<State> result;

  struct Entry {
    State state;
    double f;
  };
  const double sign = options.minimize ? 1.0 : -1.0;
  auto worse = [sign](const Entry& a, const Entry& b) {
    return sign * a.f > sign * b.f;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> open(worse);
  detail::VisitedSet visited(options.max_visited);

  auto f_of = [&](const State& s) {
    const double g = cb.g_score ? cb.g_score(s) : 0;
    const double h = cb.h_score ? cb.h_score(s) : 0;
    return g + h;
  };
  open.push(Entry{initial, f_of(initial)});
  visited.insert(cb.hash(initial));

  double bound = options.minimize ? std::numeric_limits<double>::infinity()
                                  : -std::numeric_limits<double>::infinity();
  std::size_t stale_waves = 0;
  detail::Speculation<State> spec;

  while (!open.empty() && result.stats.states_evaluated < options.max_states) {
    std::vector<State> batch;
    while (!open.empty() && batch.size() < options.batch_size &&
           result.stats.states_evaluated + batch.size() < options.max_states) {
      Entry e = open.top();
      open.pop();
      // Prune against the incumbent: "by not placing the states with high g
      // and h scores into the candidate list".
      if (result.best && !detail::better(e.f, bound, options.minimize)) {
        ++result.stats.states_pruned;
        continue;
      }
      batch.push_back(std::move(e.state));
    }
    if (batch.empty()) break;
    // Child generation, hashing and f-scoring for this wave overlap its
    // evaluation.
    const auto scores = detail::evaluate_wave(cb, options, batch, &f_of, spec,
                                              result.stats.eval_stall_ms);
    result.stats.states_evaluated += batch.size();
    ++result.stats.waves;
    bool improved = false;

    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Scored& s = scores[i];
      if (s.feasible &&
          (!result.best || detail::better(s.objective, bound, options.minimize))) {
        result.best = batch[i];
        result.best_score = s;
        bound = s.objective;
        improved = true;
      }
      ++result.stats.states_expanded;
      if (!options.pipeline) {
        spec.children[i] = cb.children(batch[i]);
        spec.hashes[i].clear();
        spec.f_scores[i].clear();
        for (const State& child : spec.children[i]) {
          spec.hashes[i].push_back(cb.hash(child));
          spec.f_scores[i].push_back(f_of(child));
        }
      }
      for (std::size_t c = 0; c < spec.children[i].size(); ++c) {
        if (visited.insert(spec.hashes[i][c])) {
          const double f = spec.f_scores[i][c];
          if (result.best && options.monotone_objective &&
              !detail::better(f, bound, options.minimize)) {
            ++result.stats.states_pruned;
            continue;
          }
          open.push(Entry{std::move(spec.children[i][c]), f});
        } else {
          ++result.stats.duplicate_hits;
        }
      }
    }
    stale_waves = improved ? 0 : stale_waves + 1;
    if (options.stale_wave_limit > 0 && result.best &&
        stale_waves >= options.stale_wave_limit) {
      break;
    }
  }
  result.stats.visited_evicted = visited.evicted();
  result.stats.elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  detail::record_search_metrics("search.astar_ms", result.stats);
  return result;
}

}  // namespace deco::core
