// Parallel solver: generic search (Algorithm 2) and A* search (Section 5.3).
//
// The solver is generic over the state type: the workflow-scheduling problem
// searches instance-configuration plans, the ensemble problem searches
// admission vectors, follow-the-cost searches migration vectors.  States are
// evaluated in *batches* so the backend can assign one block per state —
// "we use N thread blocks to search the solution space at the same time".
// Exploration (breadth-first) is chosen over exploitation for parallelism,
// exactly as Section 5.3 argues.
//
// A* mode: when the user supplies g/h scores (cal_g_score / est_h_score in
// WLog, or native callbacks here), states are expanded best-first and any
// state whose g score already exceeds the best found feasible objective is
// pruned — valid whenever children cannot improve on their parent (the
// monotone-cost property the paper exploits: "child states configure tasks
// with better instance types and thus always generate higher cost").
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <span>
#include <unordered_set>
#include <vector>

#include "obs/obs.hpp"

namespace deco::core {

struct Scored {
  bool feasible = false;
  double objective = 0;
};

struct SearchOptions {
  std::size_t max_states = 4096;   ///< evaluation budget
  std::size_t batch_size = 32;     ///< states per backend launch
  bool minimize = true;
  /// Children never have a better objective than their parent; enables
  /// bound pruning against the incumbent.
  bool monotone_objective = false;
  /// Stop as soon as `early_stop_depth` consecutive expansion waves bring no
  /// incumbent improvement (0 = run the full budget).
  std::size_t stale_wave_limit = 0;
};

/// Search-effort accounting, filled identically by both the breadth-first
/// and the A* path (tests/core/search_test.cpp pins the invariants):
///   * every evaluated state is counted in states_evaluated;
///   * states_expanded counts states whose children were generated
///     (evaluated minus pruned, minus states cut off by budget/early stop);
///   * states_pruned counts bound-pruned states (generic: post-evaluation
///     bound prune; A*: additionally pop-time incumbent pruning);
///   * duplicate_hits counts children rejected by the visited set.
struct SearchStats {
  std::size_t states_evaluated = 0;
  std::size_t states_expanded = 0;
  std::size_t states_pruned = 0;
  std::size_t duplicate_hits = 0;
  std::size_t waves = 0;
  double elapsed_ms = 0;
};

namespace detail {

/// Publishes one finished search's stats to the metrics registry.
inline void record_search_metrics(const char* kind, const SearchStats& stats) {
  DECO_OBS_COUNTER_ADD("search.runs", 1);
  DECO_OBS_COUNTER_ADD("search.states_evaluated", stats.states_evaluated);
  DECO_OBS_COUNTER_ADD("search.states_expanded", stats.states_expanded);
  DECO_OBS_COUNTER_ADD("search.states_pruned", stats.states_pruned);
  DECO_OBS_COUNTER_ADD("search.duplicate_hits", stats.duplicate_hits);
  DECO_OBS_COUNTER_ADD("search.waves", stats.waves);
  DECO_OBS_HIST_MS(kind, stats.elapsed_ms);
#if defined(DECO_OBS_DISABLED)
  (void)kind;
  (void)stats;
#endif
}

}  // namespace detail

template <typename State>
struct SearchCallbacks {
  std::function<std::vector<State>(const State&)> children;
  std::function<std::uint64_t(const State&)> hash;
  std::function<std::vector<Scored>(std::span<const State>)> evaluate;
  /// A* heuristics; both null selects the generic search.
  std::function<double(const State&)> g_score;
  std::function<double(const State&)> h_score;
};

template <typename State>
struct SearchResult {
  std::optional<State> best;
  Scored best_score;
  SearchStats stats;
};

namespace detail {

inline bool better(double candidate, double incumbent, bool minimize) {
  return minimize ? candidate < incumbent : candidate > incumbent;
}

}  // namespace detail

/// Breadth-first generic search with batched evaluation (Algorithm 2).
template <typename State>
SearchResult<State> generic_search(const State& initial,
                                   const SearchCallbacks<State>& cb,
                                   const SearchOptions& options) {
  DECO_OBS_SPAN("search", "generic_search");
  const auto t0 = std::chrono::steady_clock::now();
  SearchResult<State> result;
  std::unordered_set<std::uint64_t> visited;
  std::queue<State> frontier;
  frontier.push(initial);
  visited.insert(cb.hash(initial));

  double bound = options.minimize ? std::numeric_limits<double>::infinity()
                                  : -std::numeric_limits<double>::infinity();
  std::size_t stale_waves = 0;

  while (!frontier.empty() &&
         result.stats.states_evaluated < options.max_states) {
    // Pull one batch off the FIFO queue.
    std::vector<State> batch;
    while (!frontier.empty() && batch.size() < options.batch_size &&
           result.stats.states_evaluated + batch.size() < options.max_states) {
      batch.push_back(std::move(frontier.front()));
      frontier.pop();
    }
    const std::vector<Scored> scores = cb.evaluate(batch);
    result.stats.states_evaluated += batch.size();
    ++result.stats.waves;
    bool improved = false;

    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Scored& s = scores[i];
      if (s.feasible &&
          (!result.best || detail::better(s.objective, bound, options.minimize))) {
        result.best = batch[i];
        result.best_score = s;
        bound = s.objective;
        improved = true;
      }
      // Bound prune: with a monotone objective, a state already worse than
      // the incumbent cannot lead to a better feasible descendant.
      if (options.monotone_objective && result.best &&
          !detail::better(s.objective, bound, options.minimize)) {
        ++result.stats.states_pruned;
        continue;
      }
      ++result.stats.states_expanded;
      for (State& child : cb.children(batch[i])) {
        if (visited.insert(cb.hash(child)).second) {
          frontier.push(std::move(child));
        } else {
          ++result.stats.duplicate_hits;
        }
      }
    }
    stale_waves = improved ? 0 : stale_waves + 1;
    if (options.stale_wave_limit > 0 && result.best &&
        stale_waves >= options.stale_wave_limit) {
      break;
    }
  }
  result.stats.elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  detail::record_search_metrics("search.generic_ms", result.stats);
  return result;
}

/// Best-first A* search using the user's g/h scores for ordering + pruning.
template <typename State>
SearchResult<State> astar_search(const State& initial,
                                 const SearchCallbacks<State>& cb,
                                 const SearchOptions& options) {
  DECO_OBS_SPAN("search", "astar_search");
  const auto t0 = std::chrono::steady_clock::now();
  SearchResult<State> result;

  struct Entry {
    State state;
    double f;
  };
  const double sign = options.minimize ? 1.0 : -1.0;
  auto worse = [sign](const Entry& a, const Entry& b) {
    return sign * a.f > sign * b.f;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> open(worse);
  std::unordered_set<std::uint64_t> visited;

  auto f_of = [&](const State& s) {
    const double g = cb.g_score ? cb.g_score(s) : 0;
    const double h = cb.h_score ? cb.h_score(s) : 0;
    return g + h;
  };
  open.push(Entry{initial, f_of(initial)});
  visited.insert(cb.hash(initial));

  double bound = options.minimize ? std::numeric_limits<double>::infinity()
                                  : -std::numeric_limits<double>::infinity();
  std::size_t stale_waves = 0;

  while (!open.empty() && result.stats.states_evaluated < options.max_states) {
    std::vector<State> batch;
    while (!open.empty() && batch.size() < options.batch_size &&
           result.stats.states_evaluated + batch.size() < options.max_states) {
      Entry e = open.top();
      open.pop();
      // Prune against the incumbent: "by not placing the states with high g
      // and h scores into the candidate list".
      if (result.best && !detail::better(e.f, bound, options.minimize)) {
        ++result.stats.states_pruned;
        continue;
      }
      batch.push_back(std::move(e.state));
    }
    if (batch.empty()) break;
    const std::vector<Scored> scores = cb.evaluate(batch);
    result.stats.states_evaluated += batch.size();
    ++result.stats.waves;
    bool improved = false;

    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Scored& s = scores[i];
      if (s.feasible &&
          (!result.best || detail::better(s.objective, bound, options.minimize))) {
        result.best = batch[i];
        result.best_score = s;
        bound = s.objective;
        improved = true;
      }
      ++result.stats.states_expanded;
      for (State& child : cb.children(batch[i])) {
        if (visited.insert(cb.hash(child)).second) {
          const double f = f_of(child);
          if (result.best && options.monotone_objective &&
              !detail::better(f, bound, options.minimize)) {
            ++result.stats.states_pruned;
            continue;
          }
          open.push(Entry{std::move(child), f});
        } else {
          ++result.stats.duplicate_hits;
        }
      }
    }
    stale_waves = improved ? 0 : stale_waves + 1;
    if (options.stale_wave_limit > 0 && result.best &&
        stale_waves >= options.stale_wave_limit) {
      break;
    }
  }
  result.stats.elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  detail::record_search_metrics("search.astar_ms", result.stats);
  return result;
}

}  // namespace deco::core
