#include "core/declarative.hpp"

#include <functional>
#include <optional>
#include <unordered_map>

#include "core/wlog_segments.hpp"
#include "util/stats.hpp"

namespace deco::core {
namespace {

/// One solution of a generator: the substitution for its variables.
struct GeneratorSolution {
  std::string key;  // rendered, e.g. "task(t3)"
  std::unordered_map<std::int64_t, wlog::TermPtr> substitution;
};

/// Enumerates the solutions of a generator term against the IR's base.
std::vector<GeneratorSolution> enumerate_generator(
    const wlog::Database& base, const wlog::TermPtr& generator,
    wlog::ExecMode exec, util::BudgetTracker* budget = nullptr) {
  std::vector<GeneratorSolution> out;
  wlog::Solver interp(base, exec);
  interp.set_budget(budget);
  wlog::Bindings bindings;

  // Collect the generator's variable ids.
  std::vector<std::int64_t> var_ids;
  std::function<void(const wlog::TermPtr&)> collect =
      [&](const wlog::TermPtr& t) {
        if (t->kind == wlog::TermKind::kVar) {
          var_ids.push_back(t->ival);
          return;
        }
        for (const auto& a : t->args) collect(a);
      };
  collect(generator);

  interp.solve(generator, bindings, [&](wlog::Bindings& b) {
    GeneratorSolution sol;
    for (std::int64_t id : var_ids) {
      sol.substitution[id] = b.deep_resolve(wlog::make_var(id));
    }
    sol.key = wlog::to_string(b.deep_resolve(generator));
    out.push_back(std::move(sol));
    return out.size() >= 4096;  // hard cap against runaway generators
  });
  return out;
}

/// Substitutes a solution into `term`; remaining free variables become the
/// integer `flag` (the decision marker, e.g. Con = 1).
wlog::TermPtr instantiate(const wlog::TermPtr& term,
                          const std::unordered_map<std::int64_t, wlog::TermPtr>&
                              substitution,
                          std::int64_t flag) {
  switch (term->kind) {
    case wlog::TermKind::kVar: {
      const auto it = substitution.find(term->ival);
      if (it != substitution.end()) return it->second;
      return wlog::make_int(flag);
    }
    case wlog::TermKind::kCompound: {
      std::vector<wlog::TermPtr> args;
      args.reserve(term->args.size());
      for (const auto& a : term->args) {
        args.push_back(instantiate(a, substitution, flag));
      }
      return wlog::make_compound(term->text, std::move(args));
    }
    default:
      return term;
  }
}

std::uint64_t assignment_hash(const std::vector<int>& assignment) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (int v : assignment) {
    h = (h ^ static_cast<std::uint64_t>(v + 1)) * 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

DeclarativeResult DeclarativeSolver::solve(const wlog::Program& program,
                                           const wlog::ProbProgram& ir) {
  DeclarativeResult result;
  if (!program.goal) {
    result.error = "program has no goal directive";
    return result;
  }
  if (program.vars.empty()) {
    result.error = "program has no var directive";
    return result;
  }
  const wlog::VarDecl& decl = program.vars.front();
  if (decl.generators.empty() || decl.generators.size() > 2) {
    result.error = "var directive must have one or two generators";
    return result;
  }

  // Enumerate entities (generator 1) and choices (generator 2 / boolean).
  // These run before the search proper, so a budget fired this early has no
  // incumbent to fall back on — surface it as a clean error result.
  std::vector<GeneratorSolution> entities;
  const bool boolean_form = decl.generators.size() == 1;
  std::vector<GeneratorSolution> choices;
  try {
    entities = enumerate_generator(ir.base(), decl.generators[0],
                                   options_.exec, options_.budget);
    if (!boolean_form) {
      choices = enumerate_generator(ir.base(), decl.generators[1],
                                    options_.exec, options_.budget);
    }
  } catch (const util::BudgetExhaustedError& e) {
    result.error = std::string("solve budget exhausted (") +
                   util::to_string(e.trigger()) +
                   ") before the search started";
    result.budget = options_.budget->report(0);
    return result;
  }
  if (entities.empty()) {
    result.error = "the first generator has no solutions (missing facts?)";
    return result;
  }
  if (!boolean_form && choices.empty()) {
    result.error = "the second generator has no solutions (missing facts?)";
    return result;
  }
  for (const auto& e : entities) result.entities.push_back(e.key);
  if (boolean_form) {
    result.choices = {"0", "1"};
  } else {
    for (const auto& c : choices) result.choices.push_back(c.key);
  }

  const std::size_t n = entities.size();
  const std::size_t k = boolean_form ? 2 : choices.size();

  // Bind a state: assert the decision facts for the assignment.
  auto bind_state = [&](const std::vector<int>& assignment) {
    wlog::ProbProgram bound = ir;
    for (std::size_t e = 0; e < n; ++e) {
      if (boolean_form) {
        // Assert the flag both ways so rules can test 1 or 0.
        bound.base().add_fact(instantiate(decl.template_term,
                                          entities[e].substitution,
                                          assignment[e] ? 1 : 0));
      } else {
        auto substitution = entities[e].substitution;
        for (const auto& [id, term] :
             choices[static_cast<std::size_t>(assignment[e])].substitution) {
          substitution[id] = term;
        }
        bound.base().add_fact(
            instantiate(decl.template_term, substitution, 1));
      }
    }
    return bound;
  };

  wlog::McOptions mc;
  mc.max_iterations = options_.mc_iterations;
  mc.budget = options_.budget;
  mc.exec = options_.exec;
  util::Rng rng(options_.seed);

  // One structural translation per solve: recognized totalcost/maxtime
  // query shapes evaluate as straight-line segments (no logic engine in the
  // per-world loop); everything else falls back to the MC engine below.
  const SegmentPlan seg_plan = options_.segments
                                   ? SegmentPlan::translate(ir, program)
                                   : SegmentPlan{};

  auto evaluate_state = [&](const std::vector<int>& assignment) -> Scored {
    const wlog::ProbProgram bound = bind_state(assignment);
    std::optional<SegmentState> seg;
    if (seg_plan.any()) seg.emplace(seg_plan, bound);
    const auto sample_values = [&](const wlog::TermPtr& query,
                                   const wlog::TermPtr& variable) {
      if (seg && seg->can_answer(query, variable)) {
        return seg->sample_values(query, variable, rng, mc);
      }
      return wlog::mc_sample_values(bound, query, variable, rng, mc);
    };
    const auto eval_goal = [&](const wlog::TermPtr& query,
                               const wlog::TermPtr& variable) {
      if (seg && seg->can_answer(query, variable)) {
        return seg->eval_goal(query, variable, rng, mc);
      }
      return wlog::mc_eval_goal(bound, query, variable, rng, mc);
    };
    Scored scored;
    scored.feasible = true;
    for (const wlog::ConstraintSpec& cons : program.constraints) {
      switch (cons.kind) {
        case wlog::ConstraintSpec::Kind::kDeadline:
        case wlog::ConstraintSpec::Kind::kBudget: {
          const auto values = sample_values(cons.query, cons.variable);
          if (values.empty()) {
            scored.feasible = false;
            break;
          }
          scored.feasible = util::percentile(values, cons.quantile * 100.0) <=
                            cons.bound;
          break;
        }
        case wlog::ConstraintSpec::Kind::kCompare: {
          const auto values = sample_values(cons.query, cons.variable);
          if (values.empty()) {
            scored.feasible = false;
            break;
          }
          const double mean = util::mean(values);
          double rhs = 0;
          {
            const wlog::Database modal = bound.modal_world();
            wlog::Solver solver(modal, options_.exec);
            wlog::Bindings bindings;
            if (!solver.eval_arith(cons.cmp_rhs, bindings, rhs)) {
              scored.feasible = false;
              break;
            }
          }
          bool ok = true;
          if (cons.cmp_op == "=<") ok = mean <= rhs;
          if (cons.cmp_op == "<") ok = mean < rhs;
          if (cons.cmp_op == ">=") ok = mean >= rhs;
          if (cons.cmp_op == ">") ok = mean > rhs;
          scored.feasible = ok;
          break;
        }
        case wlog::ConstraintSpec::Kind::kHolds: {
          const auto mcres = eval_goal(cons.query, nullptr);
          scored.feasible = mcres.probability >= 0.5;
          break;
        }
      }
      if (!scored.feasible) break;
    }
    const auto goal = eval_goal(program.goal->query, program.goal->variable);
    scored.feasible = scored.feasible && goal.probability > 0;
    scored.objective = goal.value;
    return scored;
  };

  SearchCallbacks<std::vector<int>> cb;
  cb.hash = assignment_hash;
  cb.children = [&](const std::vector<int>& assignment) {
    std::vector<std::vector<int>> children;
    for (std::size_t e = 0; e < n; ++e) {
      if (assignment[e] + 1 < static_cast<int>(k)) {
        std::vector<int> child = assignment;
        ++child[e];
        children.push_back(std::move(child));
      }
    }
    return children;
  };
  cb.evaluate = [&](std::span<const std::vector<int>> states) {
    std::vector<Scored> out(states.size());
    for (std::size_t i = 0; i < states.size(); ++i) {
      out[i] = evaluate_state(states[i]);
    }
    return out;
  };

  SearchOptions sopt;
  sopt.max_states = options_.max_states;
  sopt.batch_size = options_.batch_size;
  sopt.minimize = program.goal->minimize;
  sopt.stale_wave_limit = options_.stale_wave_limit;
  sopt.budget = options_.budget;

  const std::vector<int> initial(n, 0);
  SearchResult<std::vector<int>> found;
  if (program.astar_enabled) {
    auto score_via = [&](const char* predicate,
                         const std::vector<int>& assignment) {
      const wlog::ProbProgram bound = bind_state(assignment);
      const wlog::Database modal = bound.modal_world();
      wlog::Solver solver(modal, options_.exec);
      solver.set_budget(options_.budget);
      const auto solutions =
          solver.query(std::string(predicate) + "(Score)", 1);
      if (solutions.empty()) return 0.0;
      return solutions[0].number("Score");
    };
    cb.g_score = [&](const std::vector<int>& a) {
      return score_via("cal_g_score", a);
    };
    cb.h_score = [&](const std::vector<int>& a) {
      return score_via("est_h_score", a);
    };
    sopt.monotone_objective = sopt.minimize;
    found = astar_search(initial, cb, sopt);
  } else {
    found = generic_search(initial, cb, sopt);
  }

  result.stats = found.stats;
  result.budget = found.budget;
  if (!found.best) {
    result.error = "no feasible solution found within the search budget";
    return result;
  }
  result.ok = true;
  result.assignment = *found.best;
  result.goal_value = found.best_score.objective;
  result.feasible = found.best_score.feasible;
  return result;
}

}  // namespace deco::core
