#include "core/transform_ops.hpp"

#include <algorithm>
#include <unordered_set>

namespace deco::core {
namespace {

std::vector<workflow::TaskId> all_tasks(const workflow::Workflow& wf) {
  std::vector<workflow::TaskId> ids(wf.task_count());
  for (workflow::TaskId t = 0; t < wf.task_count(); ++t) ids[t] = t;
  return ids;
}

std::int32_t next_free_group(const sim::Plan& plan) {
  std::int32_t next = 0;
  for (const auto& p : plan.placements) next = std::max(next, p.group + 1);
  return next;
}

void cap(std::vector<sim::Plan>& children, std::size_t max_children) {
  if (max_children > 0 && children.size() > max_children) {
    children.resize(max_children);
  }
}

}  // namespace

std::string to_string(TransformOp op) {
  switch (op) {
    case TransformOp::kPromote: return "Promote";
    case TransformOp::kDemote: return "Demote";
    case TransformOp::kMerge: return "Merge";
    case TransformOp::kCoSchedule: return "CoSchedule";
    case TransformOp::kMove: return "Move";
    case TransformOp::kSplit: return "Split";
  }
  return "Unknown";
}

std::vector<sim::Plan> apply_op(TransformOp op, const sim::Plan& plan,
                                const workflow::Workflow& wf,
                                const cloud::Catalog& catalog,
                                const TransformOptions& options) {
  std::vector<sim::Plan> children;
  const auto focus =
      options.focus_tasks.empty() ? all_tasks(wf) : options.focus_tasks;

  switch (op) {
    case TransformOp::kPromote: {
      for (workflow::TaskId t : focus) {
        if (plan[t].vm_type + 1 < catalog.type_count()) {
          sim::Plan child = plan;
          ++child[t].vm_type;
          children.push_back(std::move(child));
        }
      }
      break;
    }
    case TransformOp::kDemote: {
      for (workflow::TaskId t : focus) {
        if (plan[t].vm_type > 0) {
          sim::Plan child = plan;
          --child[t].vm_type;
          children.push_back(std::move(child));
        }
      }
      break;
    }
    case TransformOp::kMerge: {
      // Parent/child pairs with the same type+region and no current groups.
      std::int32_t fresh = next_free_group(plan);
      for (const workflow::Edge& e : wf.edges()) {
        const auto& pp = plan[e.parent];
        const auto& pc = plan[e.child];
        if (pp.vm_type != pc.vm_type || pp.region != pc.region) continue;
        if (pp.group >= 0 && pp.group == pc.group) continue;  // already merged
        sim::Plan child = plan;
        const std::int32_t g = pp.group >= 0 ? pp.group : fresh;
        child[e.parent].group = g;
        child[e.child].group = g;
        children.push_back(std::move(child));
      }
      break;
    }
    case TransformOp::kCoSchedule: {
      // Independent same-type task pairs among the focus tasks.
      std::int32_t fresh = next_free_group(plan);
      for (std::size_t i = 0; i < focus.size(); ++i) {
        for (std::size_t j = i + 1; j < focus.size(); ++j) {
          const workflow::TaskId a = focus[i];
          const workflow::TaskId b = focus[j];
          if (plan[a].vm_type != plan[b].vm_type ||
              plan[a].region != plan[b].region) {
            continue;
          }
          if (plan[a].group >= 0 && plan[a].group == plan[b].group) continue;
          sim::Plan child = plan;
          const std::int32_t g = plan[a].group >= 0 ? plan[a].group : fresh;
          child[a].group = g;
          child[b].group = g;
          children.push_back(std::move(child));
          if (options.max_children_per_op > 0 &&
              children.size() >= options.max_children_per_op) {
            return children;
          }
        }
      }
      break;
    }
    case TransformOp::kMove: {
      // Move an ungrouped task into an existing group of matching type.
      std::unordered_set<std::int32_t> groups;
      for (workflow::TaskId t = 0; t < plan.size(); ++t) {
        if (plan[t].group >= 0) groups.insert(plan[t].group);
      }
      for (workflow::TaskId t : focus) {
        if (plan[t].group >= 0) continue;
        for (std::int32_t g : groups) {
          // Find the group's type via any member.
          for (workflow::TaskId m = 0; m < plan.size(); ++m) {
            if (plan[m].group == g && plan[m].vm_type == plan[t].vm_type &&
                plan[m].region == plan[t].region) {
              sim::Plan child = plan;
              child[t].group = g;
              children.push_back(std::move(child));
              break;
            }
          }
        }
      }
      break;
    }
    case TransformOp::kSplit: {
      for (workflow::TaskId t : focus) {
        if (plan[t].group >= 0) {
          sim::Plan child = plan;
          child[t].group = sim::kNoGroup;
          children.push_back(std::move(child));
        }
      }
      break;
    }
  }
  cap(children, options.max_children_per_op);
  return children;
}

std::vector<sim::Plan> generate_children(const sim::Plan& plan,
                                         const workflow::Workflow& wf,
                                         const cloud::Catalog& catalog,
                                         const std::vector<TransformOp>& ops,
                                         const TransformOptions& options) {
  std::vector<sim::Plan> out;
  std::unordered_set<std::uint64_t> seen;
  seen.insert(plan_hash(plan));
  for (TransformOp op : ops) {
    for (sim::Plan& child : apply_op(op, plan, wf, catalog, options)) {
      if (seen.insert(plan_hash(child)).second) {
        out.push_back(std::move(child));
      }
    }
  }
  return out;
}

std::uint64_t plan_hash(const sim::Plan& plan) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  };
  for (const auto& p : plan.placements) {
    mix(p.vm_type);
    mix(p.region);
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(p.group)) + 7);
  }
  return h;
}

}  // namespace deco::core
