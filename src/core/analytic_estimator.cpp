#include "core/analytic_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/evaluator.hpp"
#include "util/qmc.hpp"

namespace deco::core {
namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;
constexpr double kInvSqrt2Pi = 0.39894228040143267794;

double norm_cdf(double x) { return 0.5 * std::erfc(-x * kInvSqrt2); }
double norm_pdf(double x) { return kInvSqrt2Pi * std::exp(-0.5 * x * x); }

/// Clark's approximation for max(X, Y) of independent normals: matches the
/// exact first two moments of the max, then treats the result as normal again
/// for the next join.  When the combined spread is negligible the max is
/// effectively deterministic and we keep the dominant branch's moments (this
/// also covers the exact zero-variance DAG-longest-path case).
void clark_max(double mu1, double var1, double mu2, double var2,
               double& out_mu, double& out_var) {
  const double a2 = var1 + var2;
  if (a2 <= 1e-18) {
    out_mu = std::max(mu1, mu2);
    out_var = mu1 >= mu2 ? var1 : var2;
    return;
  }
  const double a = std::sqrt(a2);
  const double alpha = (mu1 - mu2) / a;
  const double cdf = norm_cdf(alpha);
  const double cdf_neg = 1.0 - cdf;
  const double pdf = norm_pdf(alpha);
  const double m1 = mu1 * cdf + mu2 * cdf_neg + a * pdf;
  const double m2 = (mu1 * mu1 + var1) * cdf + (mu2 * mu2 + var2) * cdf_neg +
                    (mu1 + mu2) * a * pdf;
  out_mu = m1;
  out_var = std::max(m2 - m1 * m1, 0.0);
}

}  // namespace

AnalyticEstimator::AnalyticEstimator(PlanEvaluator& owner) : owner_(&owner) {
  // 3-node Gauss-Hermite quadrature over I ~ N(1, cv): nodes 1 and
  // 1 +- sqrt(3) cv with weights 2/3 and 1/6.  Nodes are clamped exactly the
  // way the MC kernel clamps its interference draws, so the screen models the
  // same (truncated) factor the sampler uses.
  const double cv = owner.options().interference_cv;
  if (cv > 0) {
    const double spread = std::sqrt(3.0) * cv;
    const double lo = 1.0 - 3.0 * cv;
    const double hi = 1.0 + 3.0 * cv;
    i_nodes_ = {1.0, 1.0 - spread, 1.0 + spread};
    for (double& node : i_nodes_) {
      node = std::max(std::clamp(node, lo, hi), 0.1);
    }
    node_weights_ = {2.0 / 3.0, 1.0 / 6.0, 1.0 / 6.0};
  } else {
    i_nodes_ = {1.0, 1.0, 1.0};
    node_weights_ = {1.0, 0.0, 0.0};
  }
}

const AnalyticEstimator::TaskMoments& AnalyticEstimator::moments(
    workflow::TaskId task, cloud::TypeId type) {
  const std::uint64_t key = (static_cast<std::uint64_t>(task) << 32) |
                            static_cast<std::uint64_t>(type);
  if (const auto it = moment_cache_.find(key); it != moment_cache_.end()) {
    return it->second;
  }
  // The staged alias columns *are* the sampler's distribution: a uniform
  // column pick (1/bins each) followed by the stay/alias branch.  Averaging
  // over that process gives the exact moments the kernel samples from,
  // failure inflation included.
  const auto& seg = owner_->segment(task, type);
  TaskMoments m;
  m.cpu = seg.cpu;
  const std::size_t bins = seg.columns.size();
  if (bins != 0) {
    double m1 = 0;
    double m2 = 0;
    for (const auto& col : seg.columns) {
      m1 += col.prob * col.stay_center + (1.0 - col.prob) * col.alias_center;
      m2 += col.prob * col.stay_center * col.stay_center +
            (1.0 - col.prob) * col.alias_center * col.alias_center;
    }
    const double inv = 1.0 / static_cast<double>(bins);
    m.mean = m1 * inv;
    m.var = std::max(m2 * inv - m.mean * m.mean, 0.0);
  }
  return moment_cache_.emplace(key, m).first->second;
}

double AnalyticEstimator::expected_billed_hours(double mean, double var) {
  // ceil(max(X, 1s)/3600) >= 1 always, and exceeds k iff X > 3600 k, so the
  // expectation is 1 + sum_{k>=1} P(X > 3600 k) under the normal fit.
  if (var <= 1e-18) {
    return std::ceil(std::max(mean, 1.0) / 3600.0);
  }
  const double sigma = std::sqrt(var);
  const auto cap = static_cast<std::size_t>(
      std::min(std::max((mean + 8.0 * sigma) / 3600.0, 0.0), 1.0e4));
  double hours = 1.0;
  for (std::size_t k = 1; k <= cap; ++k) {
    hours += norm_cdf((mean - 3600.0 * static_cast<double>(k)) / sigma);
  }
  return hours;
}

AnalyticScreen AnalyticEstimator::screen(const sim::Plan& plan,
                                         const ProbDeadline& req) {
  AnalyticScreen out;
  const EvalOptions& opt = owner_->options();
  const double required = std::min(req.quantile + opt.feasibility_margin, 1.0);
  const double z_required =
      util::normal_quantile(std::clamp(required, 1e-12, 1.0 - 1e-12));
  const std::size_t n = owner_->wf_->task_count();
  if (n == 0) {
    out.deadline_prob = 1.0;
    out.z_margin = std::numeric_limits<double>::infinity();
    return out;
  }
  if (owner_->topo_.size() != n) {
    // Cyclic workflow: no finite makespan, mirror the MC path's zeroed,
    // infeasible result.
    out.z_margin = -std::numeric_limits<double>::infinity();
    return out;
  }

  const bool billed = opt.cost_model == CostModel::kBilledHours;
  const double derated = req.deadline_s / std::max(opt.quantile_safety, 1.0);

  // Prep pass: per-position duration moments and prices, per-slot group
  // billing constants.  Shares the segment cache with the MC path, so the
  // staging work (histogram fetch + alias build) is paid once for both tiers.
  fin_mu_.resize(n);
  fin_var_.resize(n);
  dyn_mu_.resize(n);
  dyn_var_.resize(n);
  cpu_.resize(n);
  price_hour_.resize(n);
  std::size_t slots = 0;
  for (const auto& placement : plan.placements) {
    slots = std::max(slots, static_cast<std::size_t>(placement.group + 1));
  }
  const auto& catalog = owner_->estimator_->catalog();
  for (std::size_t p = 0; p < n; ++p) {
    const workflow::TaskId t = owner_->topo_[p];
    const TaskMoments& m = moments(t, plan[t].vm_type);
    dyn_mu_[p] = m.mean;
    dyn_var_[p] = m.var;
    cpu_[p] = m.cpu;
    price_hour_[p] = catalog.price(plan[t].vm_type, plan[t].region);
  }
  group_price_.assign(slots, 0.0);
  group_count_.assign(slots, 0);
  for (workflow::TaskId t = 0; t < n; ++t) {
    if (plan[t].group >= 0) {
      const auto g = static_cast<std::size_t>(plan[t].group);
      group_price_[g] = catalog.price(plan[t].vm_type, plan[t].region);
      ++group_count_[g];
    }
  }

  // Propagate once per interference node, then mix.  Conditioning on I is
  // what captures the correlation a single global factor induces: within a
  // node every duration scales by the same s = 1/I, so the node's makespan
  // shifts coherently instead of averaging out.
  std::array<double, 3> node_mu{};
  std::array<double, 3> node_var{};
  std::array<double, 3> node_cost{};
  for (std::size_t k = 0; k < i_nodes_.size(); ++k) {
    if (node_weights_[k] == 0.0) continue;
    const double s = 1.0 / i_nodes_[k];
    const double s2 = s * s;
    avail_mu_.assign(slots, 0.0);
    avail_var_.assign(slots, 0.0);
    gtime_mu_.assign(slots, 0.0);
    gtime_var_.assign(slots, 0.0);
    double cost = 0;
    double mk_mu = 0;
    double mk_var = 0;
    bool mk_set = false;
    for (std::size_t p = 0; p < n; ++p) {
      const double d_mu = cpu_[p] + dyn_mu_[p] * s;
      const double d_var = dyn_var_[p] * s2;
      // start = max over parents' finish (Clark fold over the same
      // position-space CSR the kernel walks).
      double s_mu = 0;
      double s_var = 0;
      const std::size_t pb = owner_->parent_offsets_[p];
      const std::size_t pe = owner_->parent_offsets_[p + 1];
      if (pb != pe) {
        s_mu = fin_mu_[owner_->parents_[pb]];
        s_var = fin_var_[owner_->parents_[pb]];
        for (std::size_t e = pb + 1; e < pe; ++e) {
          clark_max(s_mu, s_var, fin_mu_[owner_->parents_[e]],
                    fin_var_[owner_->parents_[e]], s_mu, s_var);
        }
      }
      const std::int32_t g = plan[owner_->topo_[p]].group;
      if (g >= 0) {
        // Grouped tasks serialize on their shared instance:
        // finish = max(start, avail) + d.
        clark_max(s_mu, s_var, avail_mu_[static_cast<std::size_t>(g)],
                  avail_var_[static_cast<std::size_t>(g)], s_mu, s_var);
      }
      const double f_mu = s_mu + d_mu;
      const double f_var = s_var + d_var;
      fin_mu_[p] = f_mu;
      fin_var_[p] = f_var;
      if (g >= 0) {
        avail_mu_[static_cast<std::size_t>(g)] = f_mu;
        avail_var_[static_cast<std::size_t>(g)] = f_var;
      }
      if (!billed) {
        cost += d_mu * price_hour_[p] / 3600.0;
      } else if (g >= 0) {
        gtime_mu_[static_cast<std::size_t>(g)] += d_mu;
        gtime_var_[static_cast<std::size_t>(g)] += d_var;
      } else {
        cost += expected_billed_hours(d_mu, d_var) * price_hour_[p];
      }
      if (owner_->sink_[p]) {
        if (!mk_set) {
          mk_mu = f_mu;
          mk_var = f_var;
          mk_set = true;
        } else {
          clark_max(mk_mu, mk_var, f_mu, f_var, mk_mu, mk_var);
        }
      }
    }
    if (billed) {
      for (std::size_t g = 0; g < slots; ++g) {
        if (group_count_[g] == 0) continue;
        cost += expected_billed_hours(gtime_mu_[g], gtime_var_[g]) *
                group_price_[g];
      }
    }
    node_mu[k] = mk_mu;
    node_var[k] = mk_var;
    node_cost[k] = cost;
  }

  // Mix the conditional normals: exact mixture mean/variance and the exact
  // mixture deadline probability; the requirement quantile uses the moment-
  // matched normal fit (a screen-grade approximation).
  double mix_mu = 0;
  double mix_m2 = 0;
  double prob = 0;
  for (std::size_t k = 0; k < i_nodes_.size(); ++k) {
    const double w = node_weights_[k];
    if (w == 0.0) continue;
    mix_mu += w * node_mu[k];
    mix_m2 += w * (node_var[k] + node_mu[k] * node_mu[k]);
    out.mean_cost += w * node_cost[k];
    if (node_var[k] <= 1e-18) {
      prob += w * (node_mu[k] <= derated ? 1.0 : 0.0);
    } else {
      prob += w * norm_cdf((derated - node_mu[k]) / std::sqrt(node_var[k]));
    }
  }
  const double mix_var = std::max(mix_m2 - mix_mu * mix_mu, 0.0);
  out.mean_makespan = mix_mu;
  out.makespan_quantile =
      mix_mu + util::normal_quantile(std::clamp(req.quantile, 1e-12,
                                                1.0 - 1e-12)) *
                   std::sqrt(mix_var);
  out.deadline_prob = prob;
  out.z_margin =
      util::normal_quantile(std::clamp(prob, 1e-12, 1.0 - 1e-12)) - z_required;
  return out;
}

}  // namespace deco::core
