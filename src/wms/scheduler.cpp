#include "wms/scheduler.hpp"

namespace deco::wms {

sim::Plan RandomScheduler::schedule(const workflow::Workflow& wf,
                                    const SchedulerContext& ctx) {
  sim::Plan plan = sim::Plan::uniform(wf.task_count(), 0, ctx.region);
  for (auto& p : plan.placements) {
    p.vm_type = static_cast<cloud::TypeId>(
        ctx.rng->below(ctx.catalog->type_count()));
  }
  return plan;
}

std::string FixedTypeScheduler::name() const {
  return "Fixed";
}

sim::Plan FixedTypeScheduler::schedule(const workflow::Workflow& wf,
                                       const SchedulerContext& ctx) {
  return sim::Plan::uniform(wf.task_count(), type_, ctx.region);
}

sim::Plan AutoscalingScheduler::schedule(const workflow::Workflow& wf,
                                         const SchedulerContext& ctx) {
  core::TaskTimeEstimator estimator(*ctx.catalog, *ctx.store);
  baselines::Autoscaling autoscaling(wf, estimator);
  baselines::AutoscalingOptions options;
  options.region = ctx.region;
  return autoscaling.solve(ctx.requirement.deadline_s, options).plan;
}

sim::Plan DecoScheduler::schedule(const workflow::Workflow& wf,
                                  const SchedulerContext& ctx) {
  core::SchedulingOptions options = options_;
  options.region = ctx.region;
  if (ctx.budget != nullptr) options.search.budget = ctx.budget;
  return engine_->schedule(wf, ctx.requirement, options).plan;
}

}  // namespace deco::wms
