// Reactive, fault-tolerant execution loop on top of the WMS (Figure 3
// extended with a monitor).
//
// A static plan is only as good as the cloud it assumed: once instances
// crash or attempts fail, the residual workflow may no longer meet the
// probabilistic deadline.  ReactiveEngine closes the loop — it monitors a
// simulated run and, when the projected finish (failures included) slips
// past the deadline, prunes the completed tasks, decrements the deadline
// to what remains, and re-invokes the scheduler on the *residual* DAG;
// the first failure's time anchors where the old plan is cut.  Disrupted
// but still-on-time runs are left to the executor's retry machinery —
// replanning costs lost in-flight work and re-billed instance hours, so
// it is reserved for runs that would otherwise miss.  Replanning degrades
// gracefully: if the primary scheduler (typically Deco) throws, returns a
// malformed plan, or exceeds a wall-clock timeout, the engine falls back
// to the Autoscaling baseline (and, as a last resort, to an all-cheapest
// plan) instead of aborting the workflow.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cloud/control_plane.hpp"
#include "sim/ensemble.hpp"
#include "sim/executor.hpp"
#include "wms/scheduler.hpp"

namespace deco::wms {

struct ReactiveOptions {
  /// Simulator configuration, including the failure model to inject.
  /// `executor.control` is ignored here — set `control` below instead: the
  /// engine's probe/cut replay needs a *fresh* control plane per simulation
  /// (the plane is stateful), which it constructs from these options with
  /// the segment seed so both passes observe identical API faults.
  sim::ExecutorOptions executor;
  /// Control-plane fault/resilience configuration (nullopt = the seed
  /// simulator's infallible API).  The `seed` field is overridden per
  /// segment.  A spot-interruption *notice* observed by the probe triggers
  /// a proactive replan cut at the notice — checkpoint, then move the work
  /// — instead of waiting for the reclamation to hurt.
  std::optional<cloud::ControlPlaneOptions> control;
  /// Lag between a detected failure and the replanning cut: the monitor
  /// lets the run continue this long before the new plan takes over.
  double reaction_s = 60;
  /// Replans allowed per run; past the cap the engine rides the current
  /// plan to completion (bounds both simulation and solver work).
  std::size_t max_replans = 6;
  /// Home region every plan (initial and replanned) is pinned to; the CLI's
  /// --region flag lands here.  Changes at runtime only through a regional
  /// evacuation.
  cloud::RegionId home_region = 0;
  /// React to a regional storm forecast by evacuating: cut ahead of the
  /// storm, pick a failover region with data-gravity costs (follow-cost
  /// Eqs. 8/9), and replan the residual there.  Off = ride the storm out
  /// with the executor's retry/fallback machinery alone.  No effect without
  /// weather in `control` — traces stay bit-identical.
  bool evacuate_on_storm = true;
  /// How far ahead of a forecast storm the evacuation cut lands (the
  /// regional analogue of the spot notice lead).
  double storm_lead_s = 120;
  /// Wall-clock budget for one primary-scheduler invocation, enforced as a
  /// real cooperative budget (SchedulerContext::budget): budget-aware
  /// schedulers return their best incumbent at the cutoff and that anytime
  /// plan is *accepted*.  Non-cooperative schedulers that overrun the
  /// budget are still judged post-hoc by the wall clock and fall back to
  /// the Autoscaling baseline.  A non-positive value disables the primary
  /// scheduler outright (no budget could be met) and goes straight to the
  /// fallback.
  double solver_timeout_ms = 30000;
  /// Base seed for per-segment simulation streams.
  std::uint64_t seed = 2015;
};

struct ReactiveReport {
  bool completed = false;      ///< every task ran to completion
  double makespan = 0;         ///< global finish time, seconds
  double total_cost = 0;       ///< summed over all execution segments
  bool met_deadline = false;
  std::size_t segments = 0;    ///< execution segments simulated
  std::size_t replans = 0;     ///< scheduler re-invocations after t=0
  /// Replans triggered by a spot-interruption notice (a subset of replans):
  /// the engine cut at the advance warning rather than at a failure.
  std::size_t proactive_replans = 0;
  /// Regional evacuations: storm-triggered replans that moved the residual
  /// workflow (and its frontier data) to a failover region.
  std::size_t regional_evacuations = 0;
  /// Egress cost of the evacuated frontiers (already inside total_cost).
  double evacuation_transfer_cost = 0;
  std::size_t solver_fallbacks = 0;  ///< times the fallback plan was used
  /// Primary-scheduler invocations whose solve budget fired but still
  /// produced a valid anytime plan (accepted, not a fallback).
  std::size_t solver_budget_cutoffs = 0;
  sim::FailureStats failures;  ///< aggregated over accepted segments
  cloud::ApiStats api;         ///< control-plane stats, accepted segments
  std::string last_scheduler;  ///< who produced the final plan
};

class ReactiveEngine {
 public:
  /// The engine borrows the catalog, store and primary scheduler; they must
  /// outlive it.
  ReactiveEngine(const cloud::Catalog& catalog,
                 const cloud::MetadataStore& store, Scheduler& primary,
                 ReactiveOptions options = {});

  /// Plans and executes `wf` against the probabilistic deadline, replanning
  /// reactively on failures and deadline risk.
  ReactiveReport run(const workflow::Workflow& wf,
                     const core::ProbDeadline& requirement);

  const ReactiveOptions& options() const { return options_; }

 private:
  sim::Plan plan_or_fallback(const workflow::Workflow& wf,
                             const core::ProbDeadline& requirement,
                             util::Rng& rng, ReactiveReport& report,
                             cloud::RegionId region);

  const cloud::Catalog* catalog_;
  const cloud::MetadataStore* store_;
  Scheduler* primary_;
  ReactiveOptions options_;
};

// ---------------------------------------------------------------------------
// Sharded reactive ensembles: N independent closed-loop executions of the
// same workflow (the Monte-Carlo-over-futures question "how does this plan
// survive N possible worlds?"), fanned over sim::EnsembleRunner.  Each run
// owns a private ReactiveEngine seeded with substream_seed(base.seed, run)
// and a private primary scheduler from the factory — engines and their
// backends are stateful, so sharing one across concurrent runs is a race.
// The determinism contract is EnsembleRunner's: reports (and merged
// wms.reactive.* metrics) are bit-identical serial vs sharded at any worker
// count (tests/sim/ensemble_shard_test.cpp).

/// Builds run-private primary schedulers.  The factory itself must be safe
/// to call concurrently (typically it only constructs fresh objects from
/// const inputs); everything it returns is used by a single run.
using SchedulerFactory =
    std::function<std::unique_ptr<Scheduler>(std::size_t run)>;

struct ReactiveEnsembleOptions {
  /// Per-run engine options; `base.seed` is the ensemble base seed, replaced
  /// per run by its substream.
  ReactiveOptions base;
  /// Sharding configuration (workers/pool/budget); see sim::EnsembleOptions.
  sim::EnsembleOptions exec;
};

struct ReactiveEnsembleResult {
  /// One report per run, in run-index order.  Runs skipped by a fired
  /// budget keep a default-constructed report (completed == false).
  std::vector<ReactiveReport> reports;
  sim::EnsembleReport exec;
};

ReactiveEnsembleResult run_reactive_ensemble(
    const cloud::Catalog& catalog, const cloud::MetadataStore& store,
    const workflow::Workflow& wf, const core::ProbDeadline& requirement,
    std::size_t runs, const SchedulerFactory& make_scheduler,
    const ReactiveEnsembleOptions& options = {});

/// Factory producing, per run, a private core::Deco engine (forced onto the
/// serial compute backend — engines must not share the launch path with
/// concurrent runs; serial evaluation is bit-identical to vgpu by the
/// backend determinism contract) wrapped in a DecoScheduler.  The returned
/// factory borrows nothing: catalog/store/options are copied or captured by
/// reference to caller-owned objects that must outlive the ensemble call.
SchedulerFactory make_deco_scheduler_factory(
    const cloud::Catalog& catalog, const cloud::MetadataStore& store,
    core::SchedulingOptions scheduling = {}, core::DecoOptions engine = {});

}  // namespace deco::wms
