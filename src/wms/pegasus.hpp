// Pegasus-like workflow management system (Figure 3).
//
// The WMS pipeline reproduced here:
//   1. submit: a DAX file (or an in-memory workflow) enters the system;
//   2. mapper: the chosen scheduler produces a provisioning plan, and the
//      mapper binds each task to an execution site ("an executable workflow
//      contains information such as where to find the executable file of a
//      task and which site the task should execute on");
//   3. execution engine: the executable workflow runs on the simulated cloud
//      ("the execution engine of Pegasus distributes executable workflows to
//      the cloud resources for execution").
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "sim/executor.hpp"
#include "wms/scheduler.hpp"
#include "workflow/dax.hpp"

namespace deco::wms {

/// Site catalog: symbolic execution sites, one per (type, region) pair.
class SiteCatalog {
 public:
  explicit SiteCatalog(const cloud::Catalog& catalog);

  /// e.g. "ec2::m1.large@us-east-1".
  std::string site_name(cloud::TypeId type, cloud::RegionId region) const;
  std::size_t site_count() const;

 private:
  const cloud::Catalog* catalog_;
};

struct ExecutableTask {
  std::string executable;  ///< resolved executable file
  std::string site;        ///< execution site name
};

struct ExecutableWorkflow {
  workflow::Workflow workflow;
  sim::Plan plan;
  std::vector<ExecutableTask> tasks;
  std::string scheduler;  ///< which scheduler produced the plan
};

struct WmsRunReport {
  double makespan = 0;
  double total_cost = 0;
  bool met_deadline = false;
  std::size_t instances_used = 0;
};

struct WmsError {
  std::string message;
};

class PegasusWms {
 public:
  PegasusWms(const cloud::Catalog& catalog, const cloud::MetadataStore& store);

  /// Installs the scheduler used by the mapper (default: Random).
  void set_scheduler(std::unique_ptr<Scheduler> scheduler);
  const std::string& scheduler_name() const { return scheduler_name_; }

  /// Region every mapped plan targets (SchedulerContext::region); the CLI's
  /// --region flag lands here.  All built-in schedulers honor it.
  void set_home_region(cloud::RegionId region) { home_region_ = region; }
  cloud::RegionId home_region() const { return home_region_; }

  /// Mapper over a DAX document.  `budget` (optional) is the cooperative
  /// solve budget threaded to the scheduler via SchedulerContext::budget.
  std::variant<ExecutableWorkflow, WmsError> plan_dax(
      const std::string& dax_xml, const core::ProbDeadline& requirement,
      util::Rng& rng, util::BudgetTracker* budget = nullptr);

  /// Mapper over an in-memory workflow.
  std::variant<ExecutableWorkflow, WmsError> plan_workflow(
      const workflow::Workflow& wf, const core::ProbDeadline& requirement,
      util::Rng& rng, util::BudgetTracker* budget = nullptr);

  /// Execution engine: runs the executable workflow on the simulated cloud.
  WmsRunReport execute(const ExecutableWorkflow& executable, util::Rng& rng,
                       const core::ProbDeadline& requirement,
                       const sim::ExecutorOptions& options = {});

  const SiteCatalog& sites() const { return sites_; }

 private:
  const cloud::Catalog* catalog_;
  const cloud::MetadataStore* store_;
  SiteCatalog sites_;
  std::unique_ptr<Scheduler> scheduler_;
  std::string scheduler_name_;
  cloud::RegionId home_region_ = 0;
};

}  // namespace deco::wms
