// Scheduler callout interface of the WMS (Figure 3).
//
// "In order to schedule the workflows in the cloud, users can alternatively
// choose from several traditional schedulers provided by Pegasus and our
// proposed Deco.  For example, Pegasus provides a Random scheduler by
// default."  A scheduler maps a workflow to a provisioning plan; the mapper
// turns that into an executable workflow.
#pragma once

#include <memory>
#include <string>

#include "baselines/autoscaling.hpp"
#include "core/deco.hpp"
#include "sim/plan.hpp"
#include "util/rng.hpp"

namespace deco::wms {

struct SchedulerContext {
  const cloud::Catalog* catalog = nullptr;
  const cloud::MetadataStore* store = nullptr;
  core::ProbDeadline requirement;
  cloud::RegionId region = 0;
  util::Rng* rng = nullptr;
  /// Optional cooperative solve budget for this invocation.  Budget-aware
  /// schedulers (Deco) thread it into their search and return their best
  /// incumbent when it fires; others may ignore it.
  util::BudgetTracker* budget = nullptr;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;
  virtual sim::Plan schedule(const workflow::Workflow& wf,
                             const SchedulerContext& ctx) = 0;
};

/// Pegasus' default: a uniformly random instance type per task.
class RandomScheduler final : public Scheduler {
 public:
  std::string name() const override { return "Random"; }
  sim::Plan schedule(const workflow::Workflow& wf,
                     const SchedulerContext& ctx) override;
};

/// Every task on one fixed type (the m1.* single-type baselines of Fig. 1).
class FixedTypeScheduler final : public Scheduler {
 public:
  explicit FixedTypeScheduler(cloud::TypeId type) : type_(type) {}
  std::string name() const override;
  sim::Plan schedule(const workflow::Workflow& wf,
                     const SchedulerContext& ctx) override;

 private:
  cloud::TypeId type_;
};

/// The Autoscaling baseline as a WMS scheduler.
class AutoscalingScheduler final : public Scheduler {
 public:
  std::string name() const override { return "Autoscaling"; }
  sim::Plan schedule(const workflow::Workflow& wf,
                     const SchedulerContext& ctx) override;
};

/// Deco as a WMS scheduler ("Deco works as an alternative to the
/// user-defined callouts inside the WMS").
class DecoScheduler final : public Scheduler {
 public:
  explicit DecoScheduler(core::Deco& engine,
                         core::SchedulingOptions options = {})
      : engine_(&engine), options_(options) {}
  std::string name() const override { return "Deco"; }
  sim::Plan schedule(const workflow::Workflow& wf,
                     const SchedulerContext& ctx) override;

 private:
  core::Deco* engine_;
  core::SchedulingOptions options_;
};

}  // namespace deco::wms
