#include "wms/reactive.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "baselines/autoscaling.hpp"
#include "core/estimator.hpp"
#include "core/followcost.hpp"
#include "obs/obs.hpp"
#include "util/budget.hpp"

namespace deco::wms {
namespace {

/// The not-yet-completed slice of a workflow, with the mapping back to the
/// original task ids.  Edges from completed parents are dropped (their data
/// is already on shared storage), so residual roots are exactly the tasks
/// whose dependencies are all satisfied.
struct Residual {
  workflow::Workflow wf;
  std::vector<workflow::TaskId> to_original;
};

Residual make_residual(const workflow::Workflow& wf,
                       const std::vector<std::uint8_t>& done) {
  Residual res;
  res.wf = workflow::Workflow(wf.name());
  std::vector<workflow::TaskId> to_residual(wf.task_count(),
                                            workflow::kInvalidTask);
  for (workflow::TaskId t = 0; t < wf.task_count(); ++t) {
    if (done[t]) continue;
    to_residual[t] = res.wf.add_task(wf.task(t));
    res.to_original.push_back(t);
  }
  for (const workflow::Edge& e : wf.edges()) {
    if (to_residual[e.parent] == workflow::kInvalidTask ||
        to_residual[e.child] == workflow::kInvalidTask) {
      continue;
    }
    res.wf.add_edge(to_residual[e.parent], to_residual[e.child], e.bytes);
  }
  return res;
}

/// Mixes a segment index into the base seed (splitmix64 finalizer) so each
/// execution segment owns an independent, reproducible stream.
std::uint64_t segment_seed(std::uint64_t base, std::size_t segment) {
  std::uint64_t z = base + 0x9E3779B97F4A7C15ULL *
                               (static_cast<std::uint64_t>(segment) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void accumulate(sim::FailureStats& into, const sim::FailureStats& from) {
  into.instance_crashes += from.instance_crashes;
  into.boot_failures += from.boot_failures;
  into.task_failures += from.task_failures;
  into.stragglers += from.stragglers;
  into.retries += from.retries;
  into.spot_interruptions += from.spot_interruptions;
}

void accumulate(cloud::ApiStats& into, const cloud::ApiStats& from) {
  into.calls += from.calls;
  into.throttled += from.throttled;
  into.capacity_denials += from.capacity_denials;
  into.transient_errors += from.transient_errors;
  into.retries += from.retries;
  into.fallbacks += from.fallbacks;
  into.exhausted += from.exhausted;
  into.breaker_opens += from.breaker_opens;
  into.breaker_waits += from.breaker_waits;
  into.spot_interruptions += from.spot_interruptions;
  into.storm_denials += from.storm_denials;
  into.storm_reclaims += from.storm_reclaims;
}

/// The instance type most of `plan` runs on — the representative hardware
/// for the follow-cost evacuation estimate.
cloud::TypeId dominant_type(const sim::Plan& plan) {
  std::vector<std::size_t> counts;
  for (const sim::TaskPlacement& p : plan.placements) {
    if (p.vm_type >= counts.size()) counts.resize(p.vm_type + 1, 0);
    ++counts[p.vm_type];
  }
  cloud::TypeId best = 0;
  for (cloud::TypeId t = 0; t < counts.size(); ++t) {
    if (counts[t] > counts[best]) best = t;
  }
  return best;
}

}  // namespace

ReactiveEngine::ReactiveEngine(const cloud::Catalog& catalog,
                               const cloud::MetadataStore& store,
                               Scheduler& primary, ReactiveOptions options)
    : catalog_(&catalog),
      store_(&store),
      primary_(&primary),
      options_(options) {
  options_.reaction_s = std::max(options_.reaction_s, 1.0);
}

sim::Plan ReactiveEngine::plan_or_fallback(const workflow::Workflow& wf,
                                           const core::ProbDeadline& req,
                                           util::Rng& rng,
                                           ReactiveReport& report,
                                           cloud::RegionId region) {
  // Every returned plan is pinned to `region` (the current home, or the
  // evacuation target): schedulers honour ctx.region, and the pin below
  // keeps the invariant across fallback paths too.
  const auto pinned = [region](sim::Plan plan) {
    for (sim::TaskPlacement& p : plan.placements) p.region = region;
    return plan;
  };
  SchedulerContext ctx;
  ctx.catalog = catalog_;
  ctx.store = store_;
  ctx.requirement = req;
  ctx.rng = &rng;
  ctx.region = region;

  DECO_OBS_SPAN_TIMED("wms", "plan_or_fallback", "wms.reactive.plan_ms");
  // A non-positive timeout leaves no budget any scheduler could meet, so
  // the primary is skipped outright rather than invoked and discarded.
  if (options_.solver_timeout_ms > 0) {
    // The timeout is enforced as a real cooperative budget: a budget-aware
    // primary observes the cutoff mid-solve and returns its best incumbent,
    // which is accepted as an anytime plan.  The post-hoc wall-clock check
    // remains the backstop for schedulers that ignore the budget.
    util::SolveBudget budget;
    budget.wall_ms = options_.solver_timeout_ms;
    util::BudgetTracker tracker(budget);
    ctx.budget = &tracker;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      sim::Plan plan = primary_->schedule(wf, ctx);
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      const bool on_time = elapsed_ms <= options_.solver_timeout_ms;
      if (plan.size() == wf.task_count() &&
          (on_time || tracker.exhausted())) {
        if (tracker.exhausted()) {
          ++report.solver_budget_cutoffs;
          DECO_OBS_COUNTER_ADD("wms.reactive.solver_budget_cutoffs", 1);
        }
        report.last_scheduler = primary_->name();
        return pinned(std::move(plan));
      }
    } catch (...) {
      // Fall through to the baseline: a solver crash must not kill the run.
    }
  }
  ++report.solver_fallbacks;
  DECO_OBS_COUNTER_ADD("wms.reactive.solver_fallbacks", 1);
  try {
    core::TaskTimeEstimator estimator(*catalog_, *store_);
    baselines::Autoscaling autoscaling(wf, estimator);
    sim::Plan plan = autoscaling.solve(req.deadline_s).plan;
    if (plan.size() == wf.task_count()) {
      report.last_scheduler = "Autoscaling(fallback)";
      return pinned(std::move(plan));
    }
  } catch (...) {
  }
  report.last_scheduler = "Uniform(fallback)";
  return sim::Plan::uniform(wf.task_count(), 0, region);
}

ReactiveReport ReactiveEngine::run(const workflow::Workflow& wf,
                                   const core::ProbDeadline& req) {
  DECO_OBS_SPAN_TIMED("wms", "reactive_run", "wms.reactive.run_ms");
  DECO_OBS_COUNTER_ADD("wms.reactive.runs", 1);
  ReactiveReport report;
  if (wf.task_count() == 0) {
    report.completed = true;
    report.met_deadline = true;
    return report;
  }

  std::vector<std::uint8_t> done(wf.task_count(), 0);
  double clock = 0;        // global virtual time at the residual's start
  double last_finish = 0;  // global finish time of the latest completed task
  cloud::RegionId home = options_.home_region;  // moves on evacuation
  util::Rng plan_rng(options_.seed);

  Residual residual;
  residual.wf = wf;
  residual.to_original.resize(wf.task_count());
  for (workflow::TaskId t = 0; t < wf.task_count(); ++t) {
    residual.to_original[t] = t;
  }
  sim::Plan plan = plan_or_fallback(residual.wf, req, plan_rng, report, home);

  for (std::size_t segment = 0;; ++segment) {
    ++report.segments;
    DECO_OBS_COUNTER_ADD("wms.reactive.segments", 1);
    const std::uint64_t seed = segment_seed(options_.seed, segment);

    // Probe: simulate the residual under the current plan to completion.
    // The probe is what the monitor "would observe"; rerunning the same
    // seed with a horizon reproduces its prefix bit for bit.  The control
    // plane is stateful (token bucket, breakers, outage windows), so each
    // simulation pass gets a *fresh* instance seeded identically — the cut
    // replay below then observes the exact same API faults as the probe.
    auto make_control = [&]() -> std::optional<cloud::ControlPlane> {
      if (!options_.control) return std::nullopt;
      cloud::ControlPlaneOptions cp_options = *options_.control;
      cp_options.seed = seed;
      return std::make_optional<cloud::ControlPlane>(*catalog_, cp_options);
    };
    util::Rng probe_rng(seed);
    std::optional<cloud::ControlPlane> probe_cp = make_control();
    sim::ExecutorOptions probe_options = options_.executor;
    probe_options.control = probe_cp ? &*probe_cp : nullptr;
    probe_options.horizon_s = std::numeric_limits<double>::infinity();
    const sim::ExecutionResult probe = sim::simulate_execution(
        residual.wf, plan, *catalog_, probe_rng, probe_options);

    // Replan on deadline risk, not on every disruption: the probe's
    // projected finish already includes every failure its stream will
    // inject, so a disrupted-but-on-time trajectory is left to the
    // executor's retry machinery.  Cutting eagerly on any failure loses
    // the work in flight at the cut and re-bills instance hours, which at
    // high failure rates costs more than the failures themselves.
    const bool disrupted = std::isfinite(probe.first_failure_s);
    const bool at_risk = clock + probe.makespan > req.deadline_s;
    // A spot-interruption notice inside the run is an advance warning: the
    // engine replans *proactively* at the notice (work checkpoints there
    // and moves under the new plan) even when the trajectory would still
    // meet the deadline — riding it out donates the noticed instance's
    // in-flight work to the reclamation.
    const bool notice_pending = std::isfinite(probe.first_notice_s) &&
                                probe.first_notice_s < probe.makespan;
    // A regional storm forecast is the strongest advance warning of all:
    // capacity in the region will vanish for every type at once.  With
    // evacuation on (and somewhere to go), the engine cuts ahead of the
    // storm and fails the residual over to another region.
    const bool storm_pending = options_.evacuate_on_storm &&
                               catalog_->region_count() > 1 &&
                               std::isfinite(probe.first_storm_s) &&
                               probe.first_storm_s < probe.makespan;
    if ((!at_risk && !notice_pending && !storm_pending) ||
        report.replans >= options_.max_replans) {
      // Accept the whole trajectory: clean and on time, or out of replans.
      report.total_cost += probe.total_cost;
      accumulate(report.failures, probe.failures);
      if (probe_cp) accumulate(report.api, probe_cp->stats());
      last_finish = std::max(last_finish, clock + probe.makespan);
      for (workflow::TaskId t = 0; t < residual.wf.task_count(); ++t) {
        done[residual.to_original[t]] = 1;
      }
      break;
    }

    // Materialize the prefix up to the replanning cut: the first failure
    // plus the monitor's reaction lag when a failure caused the risk, one
    // reaction interval when the plan was simply too slow — or, earliest of
    // all, the first interruption notice (no reaction lag: the notice IS
    // the monitor's signal).
    const double reactive_cut =
        at_risk ? (disrupted ? probe.first_failure_s + options_.reaction_s
                             : options_.reaction_s)
                : std::numeric_limits<double>::infinity();
    const double proactive_cut =
        notice_pending ? std::max(probe.first_notice_s, 1.0)
                       : std::numeric_limits<double>::infinity();
    // Evacuation cuts `storm_lead_s` ahead of the forecast storm so the
    // frontier data can move before the region goes dark.
    const double evacuation_cut =
        storm_pending ? std::max(probe.first_storm_s - options_.storm_lead_s,
                                 1.0)
                      : std::numeric_limits<double>::infinity();
    const bool proactive =
        proactive_cut < reactive_cut && proactive_cut <= evacuation_cut;
    const bool evacuating =
        storm_pending && evacuation_cut < reactive_cut &&
        evacuation_cut < proactive_cut;
    const double cut = std::min({reactive_cut, proactive_cut, evacuation_cut});
    util::Rng segment_rng(seed);
    std::optional<cloud::ControlPlane> cut_cp = make_control();
    sim::ExecutorOptions cut_options = options_.executor;
    cut_options.control = cut_cp ? &*cut_cp : nullptr;
    cut_options.horizon_s = cut;
    const sim::ExecutionResult prefix = sim::simulate_execution(
        residual.wf, plan, *catalog_, segment_rng, cut_options);
    report.total_cost += prefix.total_cost;
    accumulate(report.failures, prefix.failures);
    if (cut_cp) accumulate(report.api, cut_cp->stats());
    if (proactive) {
      ++report.proactive_replans;
      DECO_OBS_COUNTER_ADD("cloud.reconcile.proactive_replans", 1);
    }
    for (workflow::TaskId t = 0; t < residual.wf.task_count(); ++t) {
      if (!prefix.completed[t]) continue;
      done[residual.to_original[t]] = 1;
      last_finish = std::max(last_finish, clock + prefix.tasks[t].finish);
    }
    clock += cut;

    residual = make_residual(wf, done);
    if (residual.wf.task_count() == 0) break;

    if (evacuating) {
      // Pick the failover region with data-gravity costs: the frontier's
      // bytes (outputs of finished parents feeding unfinished tasks) must
      // cross regions, billed at the stormy region's egress price and
      // delayed by the inter-region link (follow-cost Eqs. 8/9).
      core::TaskTimeEstimator estimator(*catalog_, *store_);
      core::MigrationWorkflowState state;
      state.wf = &wf;
      state.finished.assign(done.begin(), done.end());
      state.region = home;
      state.vm_type = dominant_type(plan);
      state.elapsed_s = clock;
      state.deadline_s = req.deadline_s;
      const core::EvacuationPlan evac = core::choose_evacuation_region(
          state, *catalog_, estimator, probe.storm_region);
      if (evac.moved) {
        ++report.regional_evacuations;
        DECO_OBS_COUNTER_ADD("wms.reactive.evacuations", 1);
        report.evacuation_transfer_cost += evac.migration_cost;
        report.total_cost += evac.migration_cost;
        // The frontier lands in the new region before the residual starts.
        clock += evac.transfer_time_s;
        home = evac.target;
      }
    }

    // Replan the residual DAG against what remains of the deadline.  Work
    // in flight at the cut is rescheduled by the new plan.
    core::ProbDeadline residual_req = req;
    residual_req.deadline_s = std::max(req.deadline_s - clock, 1.0);
    plan = plan_or_fallback(residual.wf, residual_req, plan_rng, report, home);
    ++report.replans;
    DECO_OBS_COUNTER_ADD("wms.reactive.replans", 1);
    DECO_OBS_INSTANT("wms", "replan");
  }

  report.completed =
      std::all_of(done.begin(), done.end(), [](std::uint8_t d) { return d; });
  report.makespan = last_finish;
  report.met_deadline = report.completed && last_finish <= req.deadline_s;
  return report;
}

namespace {

/// DecoScheduler plus the engine it borrows, owned as one run-private unit.
class OwningDecoScheduler final : public Scheduler {
 public:
  OwningDecoScheduler(const cloud::Catalog& catalog,
                      const cloud::MetadataStore& store,
                      const core::SchedulingOptions& scheduling,
                      const core::DecoOptions& engine_options)
      : engine_(catalog, store, engine_options),
        inner_(engine_, scheduling) {}

  std::string name() const override { return inner_.name(); }
  sim::Plan schedule(const workflow::Workflow& wf,
                     const SchedulerContext& ctx) override {
    return inner_.schedule(wf, ctx);
  }

 private:
  core::Deco engine_;
  DecoScheduler inner_;
};

}  // namespace

SchedulerFactory make_deco_scheduler_factory(
    const cloud::Catalog& catalog, const cloud::MetadataStore& store,
    core::SchedulingOptions scheduling, core::DecoOptions engine) {
  engine.backend = "serial";
  return [&catalog, &store, scheduling,
          engine](std::size_t /*run*/) -> std::unique_ptr<Scheduler> {
    return std::make_unique<OwningDecoScheduler>(catalog, store, scheduling,
                                                 engine);
  };
}

ReactiveEnsembleResult run_reactive_ensemble(
    const cloud::Catalog& catalog, const cloud::MetadataStore& store,
    const workflow::Workflow& wf, const core::ProbDeadline& requirement,
    std::size_t runs, const SchedulerFactory& make_scheduler,
    const ReactiveEnsembleOptions& options) {
  ReactiveEnsembleResult result;
  result.reports.resize(runs);
  sim::EnsembleRunner runner(options.exec);
  result.exec = runner.run(
      runs, options.base.seed, [&](const sim::RunContext& ctx) {
        const std::unique_ptr<Scheduler> primary = make_scheduler(ctx.index);
        ReactiveOptions run_options = options.base;
        run_options.seed = ctx.seed;
        ReactiveEngine engine(catalog, store, *primary, run_options);
        result.reports[ctx.index] = engine.run(wf, requirement);
      });
  return result;
}

}  // namespace deco::wms
