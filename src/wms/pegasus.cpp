#include "wms/pegasus.hpp"

namespace deco::wms {

SiteCatalog::SiteCatalog(const cloud::Catalog& catalog) : catalog_(&catalog) {}

std::string SiteCatalog::site_name(cloud::TypeId type,
                                   cloud::RegionId region) const {
  return "ec2::" + catalog_->type(type).name + "@" +
         catalog_->region(region).name;
}

std::size_t SiteCatalog::site_count() const {
  return catalog_->type_count() * catalog_->region_count();
}

PegasusWms::PegasusWms(const cloud::Catalog& catalog,
                       const cloud::MetadataStore& store)
    : catalog_(&catalog), store_(&store), sites_(catalog) {
  set_scheduler(std::make_unique<RandomScheduler>());
}

void PegasusWms::set_scheduler(std::unique_ptr<Scheduler> scheduler) {
  scheduler_ = std::move(scheduler);
  scheduler_name_ = scheduler_->name();
}

std::variant<ExecutableWorkflow, WmsError> PegasusWms::plan_dax(
    const std::string& dax_xml, const core::ProbDeadline& requirement,
    util::Rng& rng, util::BudgetTracker* budget) {
  workflow::DaxResult parsed = workflow::parse_dax(dax_xml);
  if (std::holds_alternative<workflow::DaxError>(parsed)) {
    return WmsError{std::get<workflow::DaxError>(parsed).message};
  }
  return plan_workflow(std::get<workflow::Workflow>(parsed), requirement, rng,
                       budget);
}

std::variant<ExecutableWorkflow, WmsError> PegasusWms::plan_workflow(
    const workflow::Workflow& wf, const core::ProbDeadline& requirement,
    util::Rng& rng, util::BudgetTracker* budget) {
  if (!wf.is_acyclic()) return WmsError{"workflow contains a cycle"};
  SchedulerContext ctx;
  ctx.catalog = catalog_;
  ctx.store = store_;
  ctx.requirement = requirement;
  ctx.rng = &rng;
  ctx.budget = budget;
  ctx.region = home_region_;

  ExecutableWorkflow executable;
  executable.workflow = wf;
  executable.plan = scheduler_->schedule(wf, ctx);
  executable.scheduler = scheduler_->name();
  if (executable.plan.size() != wf.task_count()) {
    return WmsError{"scheduler returned a plan of the wrong size"};
  }
  executable.tasks.reserve(wf.task_count());
  for (workflow::TaskId t = 0; t < wf.task_count(); ++t) {
    const auto& placement = executable.plan[t];
    executable.tasks.push_back(ExecutableTask{
        wf.task(t).executable,
        sites_.site_name(placement.vm_type, placement.region)});
  }
  return executable;
}

WmsRunReport PegasusWms::execute(const ExecutableWorkflow& executable,
                                 util::Rng& rng,
                                 const core::ProbDeadline& requirement,
                                 const sim::ExecutorOptions& options) {
  const sim::ExecutionResult result = sim::simulate_execution(
      executable.workflow, executable.plan, *catalog_, rng, options);
  WmsRunReport report;
  report.makespan = result.makespan;
  report.total_cost = result.total_cost;
  report.instances_used = result.instances_used;
  report.met_deadline = result.makespan <= requirement.deadline_s;
  return report;
}

}  // namespace deco::wms
