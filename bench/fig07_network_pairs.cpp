// Figure 7: pairwise network bandwidth histograms —
//   (a) m1.large <-> m1.large and (b) m1.medium <-> m1.large.
//
// Paper shape: the m1.medium pair varies much more than the m1.large pair
// ("users can achieve better cloud performance by purchasing better types").
#include "bench/bench_common.hpp"

int main() {
  using namespace deco;
  using bench::env;
  bench::print_header(
      "Figure 7",
      "Network bandwidth histograms of instance-type pairs (10000 samples)");

  cloud::MetadataStore store;
  cloud::CalibrationOptions options;
  options.samples_per_setting = 10000;
  util::Rng rng(77);
  const auto report = cloud::calibrate(env().catalog, store, options, rng);

  struct PairSpec {
    const char* label;
    const char* a;
    const char* b;
  };
  const PairSpec pairs[] = {
      {"(a) m1.large <-> m1.large", "m1.large", "m1.large"},
      {"(b) m1.medium <-> m1.large", "m1.medium", "m1.large"},
  };

  double spread[2] = {0, 0};
  int idx = 0;
  for (const auto& pair : pairs) {
    const auto* rec =
        report.find(cloud::MetadataStore::net_key("ec2", pair.a, pair.b));
    if (rec == nullptr) continue;
    std::printf("%s: mean %.1f Mbit/s, stddev %.1f\n", pair.label,
                util::mean(rec->samples), util::stddev(rec->samples));
    const auto hist = util::Histogram::from_samples(rec->samples, 14);
    for (std::size_t b = 0; b < hist.bin_count(); ++b) {
      const int bar = static_cast<int>(hist.masses()[b] * 240);
      std::printf("  %7.1f | %s\n", hist.centers()[b],
                  std::string(static_cast<std::size_t>(bar), '#').c_str());
    }
    spread[idx++] = util::stddev(rec->samples) / util::mean(rec->samples);
    std::printf("\n");
  }
  std::printf("coefficient of variation: medium-large %.3f vs large-large "
              "%.3f (paper: the medium pair is far noisier)\n",
              spread[1], spread[0]);
  return 0;
}
