// Figure 9: workflow ensembles — normalized score of Deco vs SPSS across the
// five ensemble types under budgets Bgt1..Bgt5 (deadline fixed at D3), plus
// the Section 6.3.2 sensitivity sweep over the probabilistic deadline
// requirement.
//
// Paper shape: equal scores at Bgt1 and Bgt5 (only one / all workflows fit),
// Deco ahead in between; SPSS's average per-workflow cost ~1.4x Deco's.
#include "bench/bench_common.hpp"

#include "baselines/spss.hpp"

#include "workflow/analysis.hpp"

namespace {

/// Per-member deadline D3: ~2.2x the member's critical path on a mid-tier
/// instance.  Tight enough that serializing a whole member onto one instance
/// violates it — the regime where the transformation operations trade off
/// against the deadline, as in the paper.
double member_deadline(const deco::workflow::Workflow& wf) {
  std::vector<double> weights(wf.task_count());
  for (deco::workflow::TaskId t = 0; t < wf.task_count(); ++t) {
    weights[t] = wf.task(t).cpu_seconds / 2.0 + 30.0;  // medium CPU + IO slack
  }
  return 2.2 * deco::workflow::critical_path(wf, weights).length;
}

deco::workflow::Ensemble build_ensemble(deco::workflow::EnsembleType type) {
  deco::util::Rng rng(9);
  deco::workflow::EnsembleOptions opt;
  opt.app = deco::workflow::AppType::kLigo;
  opt.type = type;
  opt.num_workflows = 12;      // scaled from the paper's 30-50 for runtime
  opt.sizes = {20, 100, 300};  // scaled from {20, 100, 1000}
  auto ensemble = deco::workflow::make_ensemble(opt, rng);
  for (auto& m : ensemble.members) {
    m.deadline_s = member_deadline(m.workflow);
    m.deadline_q = 96;
  }
  return ensemble;
}

}  // namespace

int main() {
  using namespace deco;
  using bench::env;
  bench::print_header(
      "Figure 9",
      "Ensemble scores, Deco vs SPSS, five ensemble types x budgets\n"
      "Bgt1..Bgt5 (LIGO, deadline D3; scores normalized to SPSS)");

  vgpu::VirtualGpuBackend backend;
  core::Deco engine(env().catalog, env().store);

  util::Table table({"ensemble type", "budget", "SPSS score", "Deco score",
                     "Deco/SPSS"});
  double spss_cost_per_wf = 0;
  double deco_cost_per_wf = 0;
  std::size_t spss_admitted = 0;
  std::size_t deco_admitted = 0;

  for (const auto type : workflow::kAllEnsembleTypes) {
    // Deadline D3: the middle of [MinDeadline, MaxDeadline]; approximated by
    // a bound generous for mid-size members.
    workflow::Ensemble ensemble = build_ensemble(type);

    // MinBudget/MaxBudget per Section 6.1: the cost of the single cheapest
    // member / of everything (probe with an unconstrained SPSS pass).
    baselines::Spss spss(env().catalog, env().store, backend);
    auto probe = ensemble;
    probe.budget = 1e9;
    const auto all = spss.plan(probe);
    double min_cost = 1e18;
    for (double c : all.member_costs) {
      if (c > 0) min_cost = std::min(min_cost, c);
    }
    const double max_budget = all.total_cost;

    for (int b = 1; b <= 5; ++b) {
      const double budget =
          min_cost + (max_budget - min_cost) * (b - 1) / 4.0;
      ensemble.budget = budget;
      const auto spss_result = spss.plan(ensemble);
      const auto deco_result = engine.plan_ensemble(ensemble);
      table.add_row(
          {workflow::to_string(type), "Bgt" + std::to_string(b),
           util::Table::num(spss_result.score, 3),
           util::Table::num(deco_result.score, 3),
           spss_result.score > 0
               ? util::Table::num(deco_result.score / spss_result.score, 2)
               : "-"});
      for (std::size_t i = 0; i < ensemble.members.size(); ++i) {
        if (spss_result.admitted[i]) {
          spss_cost_per_wf += spss_result.member_costs[i];
          ++spss_admitted;
        }
        if (deco_result.admitted[i]) {
          deco_cost_per_wf += deco_result.member_costs[i];
          ++deco_admitted;
        }
      }
    }
  }
  std::printf("%s", table.to_string().c_str());
  if (spss_admitted > 0 && deco_admitted > 0) {
    std::printf("\nAverage per-workflow cost: SPSS $%.3f vs Deco $%.3f "
                "(ratio %.2f; paper: ~1.4)\n",
                spss_cost_per_wf / spss_admitted,
                deco_cost_per_wf / deco_admitted,
                (spss_cost_per_wf / spss_admitted) /
                    (deco_cost_per_wf / deco_admitted));
  }

  // Section 6.3.2: probabilistic-requirement sweep at Bgt3.
  std::printf("\nProbabilistic deadline sweep (UniformUnsorted, Bgt3):\n");
  util::Table sweep({"p%", "SPSS score", "Deco score", "Deco/SPSS"});
  workflow::Ensemble ensemble =
      build_ensemble(workflow::EnsembleType::kUniformUnsorted);
  baselines::Spss spss(env().catalog, env().store, backend);
  auto probe = ensemble;
  probe.budget = 1e9;
  const auto all = spss.plan(probe);
  ensemble.budget = 0.5 * all.total_cost;
  for (const double p : {90.0, 96.0, 99.9}) {
    for (auto& m : ensemble.members) m.deadline_q = p;
    const auto spss_result = spss.plan(ensemble);
    const auto deco_result = engine.plan_ensemble(ensemble);
    sweep.add_row({util::Table::num(p, 1),
                   util::Table::num(spss_result.score, 3),
                   util::Table::num(deco_result.score, 3),
                   spss_result.score > 0
                       ? util::Table::num(deco_result.score / spss_result.score, 2)
                       : "-"});
  }
  std::printf("%s", sweep.to_string().c_str());
  std::printf("\nShape check: ratios ~1 at Bgt1/Bgt5, >= 1 in between.\n");
  return 0;
}
