// Figure 1: normalized average cost of running a Montage workflow with a
// deadline constraint under seven instance configurations on (simulated)
// Amazon EC2: the four single-type plans, Random, Autoscaling, and Deco.
//
// Paper shape to reproduce: m1.small / m1.medium are cheap but violate the
// deadline; among deadline-meeting configurations Deco is the cheapest, at
// roughly 40% of the most expensive configuration (m1.xlarge).
#include "bench/bench_common.hpp"

#include "wms/pegasus.hpp"

int main() {
  using namespace deco;
  using bench::env;
  bench::print_header(
      "Figure 1",
      "Average cost of Montage under different instance configurations\n"
      "(medium deadline, 96% probabilistic requirement, 40 runs each;\n"
      "costs normalized to the most expensive configuration)");

  util::Rng rng(7);
  const workflow::Workflow wf = workflow::make_montage(2, rng);
  const auto bounds = bench::deadline_bounds(wf);
  const core::ProbDeadline req{0.96, bounds.medium()};
  std::printf("Workflow: %s (%zu tasks), deadline %.0f s\n\n",
              wf.name().c_str(), wf.task_count(), req.deadline_s);

  core::Deco engine(env().catalog, env().store);
  wms::PegasusWms wms(env().catalog, env().store);

  struct Config {
    std::string name;
    std::unique_ptr<wms::Scheduler> scheduler;
  };
  std::vector<Config> configs;
  for (cloud::TypeId t = 0; t < env().catalog.type_count(); ++t) {
    configs.push_back(Config{env().catalog.type(t).name,
                             std::make_unique<wms::FixedTypeScheduler>(t)});
  }
  configs.push_back(Config{"Random", std::make_unique<wms::RandomScheduler>()});
  configs.push_back(
      Config{"Autoscaling", std::make_unique<wms::AutoscalingScheduler>()});
  configs.push_back(Config{"Deco",
                           std::make_unique<wms::DecoScheduler>(engine)});

  struct Row {
    std::string name;
    bench::RunStats stats;
  };
  std::vector<Row> rows;
  for (auto& config : configs) {
    wms.set_scheduler(std::move(config.scheduler));
    util::Rng plan_rng(11);
    const auto planned = wms.plan_workflow(wf, req, plan_rng);
    const auto& exec = std::get<wms::ExecutableWorkflow>(planned);
    rows.push_back(
        Row{config.name, bench::run_plan(wf, exec.plan, req.deadline_s, 40,
                                         1000 + rows.size())});
  }

  double max_cost = 0;
  for (const Row& row : rows) max_cost = std::max(max_cost, row.stats.avg_cost);

  util::Table table({"configuration", "normalized cost", "avg makespan s",
                     "deadline met", "satisfies 96%?"});
  for (const Row& row : rows) {
    table.add_row({row.name, util::Table::num(row.stats.avg_cost / max_cost, 3),
                   util::Table::num(row.stats.avg_makespan, 0),
                   util::Table::num(row.stats.met_fraction * 100, 0) + "%",
                   row.stats.met_fraction >= req.quantile ? "yes" : "NO"});
  }
  std::printf("%s", table.to_string().c_str());

  const double deco = rows.back().stats.avg_cost;
  std::printf("\nDeco cost / most-expensive-config cost = %.2f "
              "(paper: ~0.40)\n",
              deco / max_cost);
  return 0;
}
