// Figure 8: the workflow scheduling problem — average monetary cost and
// execution time of Deco vs Autoscaling on Montage-1/4/8 across
// probabilistic deadline requirements (90% ... 99.9%); results normalized
// to Autoscaling.
//
// Paper shape: Deco cuts 30-50% of Autoscaling's cost under all settings,
// saves more on larger workflows and looser probabilistic requirements, and
// its (larger) execution times still honour the requirement.
#include "bench/bench_common.hpp"

#include "baselines/autoscaling.hpp"

int main() {
  using namespace deco;
  using bench::env;
  bench::print_header(
      "Figure 8",
      "Deco vs Autoscaling across probabilistic deadline requirements\n"
      "(medium deadline; 40 simulator runs per point; cost and time\n"
      "normalized to Autoscaling)");

  core::Deco engine(env().catalog, env().store);
  util::Table table({"workflow", "p%", "norm cost", "norm time",
                     "Deco met", "AS met"});

  for (const int degree : {1, 4, 8}) {
    util::Rng rng(7 + static_cast<std::uint64_t>(degree));
    const workflow::Workflow wf = workflow::make_montage(degree, rng);
    const auto bounds = bench::deadline_bounds(wf);
    // Near-frontier deadline so the probabilistic requirement has bite: a
    // stricter percentile must buy faster (costlier) configurations.
    const double deadline = 0.5 * (bounds.tight() + bounds.medium());

    core::TaskTimeEstimator estimator(env().catalog, env().store);
    baselines::Autoscaling autoscaling(wf, estimator);

    for (const double p : {90.0, 94.0, 96.0, 99.9}) {
      const core::ProbDeadline req{p / 100.0, deadline};
      const auto deco = engine.schedule(wf, req);
      // Autoscaling is deterministic; per Section 6.1 its deadline target is
      // the same percentile-adjusted deadline value.
      const auto as_plan = autoscaling.solve(deadline);

      const auto deco_stats =
          bench::run_plan(wf, deco.plan, deadline, 40, 100 + degree);
      const auto as_stats =
          bench::run_plan(wf, as_plan.plan, deadline, 40, 200 + degree);

      table.add_row(
          {wf.name(), util::Table::num(p, 1),
           util::Table::num(deco_stats.avg_cost / as_stats.avg_cost, 3),
           util::Table::num(deco_stats.avg_makespan / as_stats.avg_makespan, 3),
           util::Table::num(deco_stats.met_fraction * 100, 0) + "%",
           util::Table::num(as_stats.met_fraction * 100, 0) + "%"});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nShape check: norm cost < 1 across rows (paper: 0.5-0.7);\n"
              "norm time >= 1 while Deco still meets the requirement.\n");
  return 0;
}
