// Ablation: Monte Carlo iteration count vs estimate quality.
//
// Algorithm 1 approximates probabilistic inference with Max_iter samples;
// this bench measures how the deadline-probability estimate converges (and
// what each extra iteration costs) so the default can be justified.
#include "bench/bench_common.hpp"

int main() {
  using namespace deco;
  using bench::env;
  bench::print_header(
      "Ablation: Monte Carlo iterations",
      "Deadline-probability estimate vs Max_iter (Montage-1 plan near the\n"
      "feasibility boundary; reference = 4096 iterations)");

  util::Rng rng(7);
  const workflow::Workflow wf = workflow::make_montage(1, rng);
  const sim::Plan plan = sim::Plan::uniform(wf.task_count(), 1);

  // Reference estimate with a large iteration budget; the deadline is set to
  // the plan's own 96th percentile so the true probability sits at ~0.96 —
  // the regime where Monte Carlo error actually matters.
  core::TaskTimeEstimator estimator(env().catalog, env().store);
  vgpu::VirtualGpuBackend backend;
  core::EvalOptions ref_opt;
  ref_opt.mc_iterations = 4096;
  core::PlanEvaluator reference(wf, estimator, backend, ref_opt);
  const double boundary =
      reference.evaluate(plan, {0.96, 1e12}).makespan_quantile;
  const core::ProbDeadline req{0.96, boundary};
  const auto ref = reference.evaluate(plan, req);
  std::printf("reference: P(makespan <= D) = %.4f, mean cost $%.4f\n\n",
              ref.deadline_prob, ref.mean_cost);

  util::Table table({"Max_iter", "P estimate", "abs error", "cost estimate",
                     "cost rel err", "time us"});
  for (const std::size_t iters : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    core::EvalOptions opt;
    opt.mc_iterations = iters;
    // Vary the seed across repetitions to measure spread honestly.
    double p_err = 0;
    double c_err = 0;
    double elapsed_us = 0;
    const int reps = 16;
    for (int rep = 0; rep < reps; ++rep) {
      opt.seed = 1000 + static_cast<std::uint64_t>(rep);
      core::PlanEvaluator evaluator(wf, estimator, backend, opt);
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = evaluator.evaluate(plan, req);
      elapsed_us += std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
      p_err += std::abs(r.deadline_prob - ref.deadline_prob);
      c_err += std::abs(r.mean_cost - ref.mean_cost) / ref.mean_cost;
    }
    table.add_row({std::to_string(iters),
                   util::Table::num(ref.deadline_prob, 3),
                   util::Table::num(p_err / reps, 4),
                   util::Table::num(ref.mean_cost, 4),
                   util::Table::num(c_err / reps, 4),
                   util::Table::num(elapsed_us / reps, 0)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nShape check: error falls ~1/sqrt(Max_iter); the default of\n"
              "128 iterations keeps the probability estimate within a few\n"
              "percentage points at sub-millisecond cost per state.\n");
  return 0;
}
