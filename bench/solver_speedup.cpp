// Solver performance (Sections 6.3.1 / 6.3.2 text): parallel "virtual GPU"
// evaluation vs the serial CPU baseline, and the per-task optimization
// overhead.
//
// Paper numbers for context: on an NVIDIA K40 vs a 6-core CPU, 12X/10X/20X
// speed-ups on Montage-1/4/8 scheduling and 36X/22X/18X on 20/100/1000-task
// ensembles; optimization overhead of 4.3-63.17 ms per task.  This host has
// no GPU (and may have a single core), so the *absolute* speed-up is
// hardware-bound — the bench demonstrates that the identical kernel
// decomposition runs on both backends and reports the measured ratio and the
// per-task overhead.
#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"

namespace {

using namespace deco;

const workflow::Workflow& montage(int degree) {
  static std::map<int, workflow::Workflow> cache;
  auto it = cache.find(degree);
  if (it == cache.end()) {
    util::Rng rng(7 + static_cast<std::uint64_t>(degree));
    it = cache.emplace(degree, workflow::make_montage(degree, rng)).first;
  }
  return it->second;
}

void evaluate_batch(const workflow::Workflow& wf, vgpu::ComputeBackend& backend,
                    std::size_t batch) {
  core::TaskTimeEstimator estimator(bench::env().catalog, bench::env().store);
  core::PlanEvaluator evaluator(wf, estimator, backend);
  std::vector<sim::Plan> plans;
  for (std::size_t i = 0; i < batch; ++i) {
    sim::Plan plan = sim::Plan::uniform(wf.task_count(), 0);
    for (std::size_t t = 0; t < plan.size(); ++t) {
      plan[t].vm_type = static_cast<cloud::TypeId>((t + i) % 4);
    }
    plans.push_back(std::move(plan));
  }
  const auto results = evaluator.evaluate_batch(plans, {0.96, 1e6});
  benchmark::DoNotOptimize(results.data());
}

void BM_EvalSerial(benchmark::State& state) {
  const auto& wf = montage(static_cast<int>(state.range(0)));
  vgpu::SerialBackend backend;
  for (auto _ : state) evaluate_batch(wf, backend, 16);
  state.counters["tasks"] = static_cast<double>(wf.task_count());
}

void BM_EvalVirtualGpu(benchmark::State& state) {
  const auto& wf = montage(static_cast<int>(state.range(0)));
  vgpu::VirtualGpuBackend backend;
  for (auto _ : state) evaluate_batch(wf, backend, 16);
  state.counters["tasks"] = static_cast<double>(wf.task_count());
}

void BM_ScheduleOverheadPerTask(benchmark::State& state) {
  // End-to-end optimization time divided by task count: the paper's
  // "4.3-63.17 ms per task for a workflow with 20-1000 tasks".
  const auto& wf = montage(static_cast<int>(state.range(0)));
  const auto bounds = bench::deadline_bounds(wf);
  core::Deco engine(bench::env().catalog, bench::env().store);
  double total_ms = 0;
  std::size_t solves = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = engine.schedule(wf, {0.96, bounds.medium()});
    total_ms += std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    ++solves;
    benchmark::DoNotOptimize(result.found);
  }
  state.counters["ms_per_task"] =
      total_ms / static_cast<double>(solves) /
      static_cast<double>(wf.task_count());
}

BENCHMARK(BM_EvalSerial)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EvalVirtualGpu)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScheduleOverheadPerTask)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
