// Solver speed-up tracker (Sections 6.3.1 / 6.3.2 text): the work-stealing
// "virtual GPU" backend vs the serial CPU baseline on the *search-driven*
// workload — a real scheduling solve whose waves mix cached and uncached
// plans — plus the per-task optimization overhead.
//
// Paper numbers for context: on an NVIDIA K40 vs a 6-core CPU, 12X/10X/20X
// speed-ups on Montage-1/4/8 scheduling and 36X/22X/18X on 20/100/1000-task
// ensembles; optimization overhead of 4.3-63.17 ms per task.  This host has
// no GPU (and may have a single core), so the *absolute* speed-up is
// hardware-bound — the bench sweeps worker counts (1/2/4/hw) over the
// identical kernel decomposition and records the measured ratio, the
// evaluation-stall time of the pipelined driver, and the per-task overhead.
// The hw_threads field in the JSON says what parallelism the host could
// actually express.
//
// Usage: solver_speedup [output.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/scheduling.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace deco;

struct Row {
  std::string workflow;
  std::size_t tasks = 0;
  std::string backend;
  std::size_t workers = 0;  ///< vgpu pool workers; 0 for the serial backend
  std::size_t mc_iterations = 0;
  std::size_t states_evaluated = 0;
  double seconds = 0;
  double states_per_sec = 0;
  double eval_stall_ms = 0;
  double ms_per_task = 0;
  double speedup_vs_serial = 0;
};

Row run_case(const workflow::Workflow& wf, const std::string& backend_name,
             std::size_t workers, double deadline) {
  core::TaskTimeEstimator estimator(bench::env().catalog, bench::env().store);
  auto backend = vgpu::make_backend(backend_name, workers);
  core::EvalOptions eval;
  eval.mc_iterations = 1000;  // the paper's Max_iter default
  eval.cost_model = core::CostModel::kBilledHours;
  core::SchedulingProblem problem(wf, estimator, *backend, eval);

  core::SchedulingOptions opt;
  opt.search.max_states = 96;
  opt.search.batch_size = 32;
  opt.search.stale_wave_limit = 0;  // fixed budget: comparable across backends

  const core::ProbDeadline req{0.9, deadline};
  // One warm-up solve fills the estimator and staging caches; the timed
  // solves then measure the steady-state search regime.  Best-of-reps is the
  // least-interference estimate on a shared host.
  (void)problem.solve(req, opt);
  double best = 1e300;
  core::SearchStats stats;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = problem.solve(req, opt);
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (dt < best) {
      best = dt;
      stats = result.stats;
    }
  }

  Row row;
  row.workflow = wf.name();
  row.tasks = wf.task_count();
  row.backend = backend_name;
  row.workers = backend_name == "serial" ? 0 : workers;
  row.mc_iterations = eval.mc_iterations;
  row.states_evaluated = stats.states_evaluated;
  row.seconds = best;
  row.states_per_sec = static_cast<double>(stats.states_evaluated) / best;
  row.eval_stall_ms = stats.eval_stall_ms;
  row.ms_per_task = best * 1000.0 / static_cast<double>(wf.task_count());
  return row;
}

bool write_json(const std::vector<Row>& rows, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"solver_speedup\",\n");
  std::fprintf(f,
               "  \"unit\": {\"states_per_sec\": \"plans/s\", "
               "\"eval_stall_ms\": \"ms\", \"ms_per_task\": \"ms/task\", "
               "\"speedup_vs_serial\": \"x\"},\n");
  std::fprintf(f, "  \"hw_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"workflow\": \"%s\", \"tasks\": %zu, \"backend\": \"%s\", "
        "\"workers\": %zu, \"mc_iterations\": %zu, \"states_evaluated\": "
        "%zu, \"seconds\": %.6f, \"states_per_sec\": %.1f, "
        "\"eval_stall_ms\": %.2f, \"ms_per_task\": %.2f, "
        "\"speedup_vs_serial\": %.3f}%s\n",
        r.workflow.c_str(), r.tasks, r.backend.c_str(), r.workers,
        r.mc_iterations, r.states_evaluated, r.seconds, r.states_per_sec,
        r.eval_stall_ms, r.ms_per_task, r.speedup_vs_serial,
        i + 1 < rows.size() ? "," : "");
  }
  const std::string metrics =
      obs::to_json(obs::Registry::instance().snapshot());
  std::fprintf(f, "  ],\n  \"metrics\": %s\n}\n", metrics.c_str());
  return std::fclose(f) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deco;
  const std::string out = argc > 1 ? argv[1] : "BENCH_solver.json";
  obs::Registry::instance().set_enabled(true);
  bench::print_header(
      "solver_speedup",
      "Search-driven solver throughput: serial baseline vs work-stealing "
      "vgpu backend at 1/2/4/hw workers (billed-hours model, 1000 MC "
      "iterations, 96-state budget), with pipelined-driver stall time and "
      "per-task optimization overhead.");

  util::Rng rng(2015);
  std::vector<workflow::Workflow> workflows;
  workflows.push_back(workflow::make_montage_by_width(28, rng));
  workflows.push_back(workflow::make_cybershake(100, rng));

  // Worker sweep: 1, 2, 4 and the hardware thread count, deduplicated.
  std::vector<std::size_t> sweep{1, 2, 4};
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (std::find(sweep.begin(), sweep.end(), hw) == sweep.end()) {
    sweep.push_back(hw);
  }

  std::vector<Row> rows;
  std::printf("%-12s %6s %-7s %7s %10s %12s %10s %9s\n", "workflow", "tasks",
              "backend", "workers", "states/s", "stall_ms", "ms/task",
              "speedup");
  for (const auto& wf : workflows) {
    const double deadline = bench::deadline_bounds(wf).medium();
    Row serial = run_case(wf, "serial", 0, deadline);
    serial.speedup_vs_serial = 1.0;
    rows.push_back(serial);
    std::printf("%-12s %6zu %-7s %7zu %10.1f %12.1f %10.2f %9.3f\n",
                serial.workflow.c_str(), serial.tasks, serial.backend.c_str(),
                serial.workers, serial.states_per_sec, serial.eval_stall_ms,
                serial.ms_per_task, serial.speedup_vs_serial);
    for (const std::size_t workers : sweep) {
      Row row = run_case(wf, "vgpu", workers, deadline);
      row.speedup_vs_serial = row.states_per_sec / serial.states_per_sec;
      std::printf("%-12s %6zu %-7s %7zu %10.1f %12.1f %10.2f %9.3f\n",
                  row.workflow.c_str(), row.tasks, row.backend.c_str(),
                  row.workers, row.states_per_sec, row.eval_stall_ms,
                  row.ms_per_task, row.speedup_vs_serial);
      rows.push_back(std::move(row));
    }
  }
  if (!write_json(rows, out)) return 1;
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
