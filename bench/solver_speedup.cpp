// Solver speed-up tracker (Sections 6.3.1 / 6.3.2 text): the work-stealing
// "virtual GPU" backend vs the serial CPU baseline on the *search-driven*
// workload — a real scheduling solve whose waves mix cached and uncached
// plans — plus the per-task optimization overhead.
//
// Paper numbers for context: on an NVIDIA K40 vs a 6-core CPU, 12X/10X/20X
// speed-ups on Montage-1/4/8 scheduling and 36X/22X/18X on 20/100/1000-task
// ensembles; optimization overhead of 4.3-63.17 ms per task.  This host has
// no GPU (and may have a single core), so the *absolute* speed-up is
// hardware-bound — the bench sweeps worker counts (1/2/4/hw) over the
// identical kernel decomposition and records the measured ratio, the
// evaluation-stall time of the pipelined driver, and the per-task overhead.
// The hw_threads field in the JSON says what parallelism the host could
// actually express.
//
// On top of the backend sweep, every configuration runs under both the
// full-MC estimator (`mc`, the pre-screening baseline) and the tiered
// estimator hierarchy (`auto`: analytic screen -> adaptive QMC -> full-MC
// verify).  The "screening" block in the JSON summarizes what the screen
// decided and the auto-vs-mc throughput ratio per workflow — the headline
// number of the estimator-hierarchy work (docs/performance.md).
//
// The "wlog" block tracks the declarative path itself: the same scheduling
// program solved through the tree-walking interpreter (pre-compilation
// baseline), the bytecode VM, the VM plus IR-to-segment translation (the
// default pipeline), and the native solver as the reference ceiling — all
// serial, so the ratios isolate the engine, not the backend.
//
// Usage: solver_speedup [output.json] [--smoke]
//   --smoke shrinks workflows, budgets and repetitions to a CI-sized run.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/deco.hpp"
#include "core/scheduling.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace deco;

struct Row {
  std::string workflow;
  std::size_t tasks = 0;
  std::string backend;
  std::size_t workers = 0;  ///< vgpu pool workers; 0 for the serial backend
  std::string estimator = "mc";
  std::size_t mc_iterations = 0;
  std::size_t states_evaluated = 0;
  std::size_t states_pruned = 0;  ///< analytic-screen rejections (auto only)
  double seconds = 0;
  double states_per_sec = 0;
  double eval_stall_ms = 0;
  double ms_per_task = 0;
  double speedup_vs_serial = 0;
  double speedup_vs_mc = 0;  ///< same config, auto vs mc; 1.0 for mc rows
  core::ScreenStats screen;  ///< zeroed for the full-MC rows
};

struct CaseConfig {
  core::EstimatorMode mode = core::EstimatorMode::kMc;
  std::size_t mc_iterations = 1000;  // the paper's Max_iter default
  std::size_t max_states = 96;
  int reps = 3;
};

Row run_case(const workflow::Workflow& wf, const std::string& backend_name,
             std::size_t workers, double deadline, const CaseConfig& cfg) {
  core::TaskTimeEstimator estimator(bench::env().catalog, bench::env().store);
  auto backend = vgpu::make_backend(backend_name, workers);
  core::EvalOptions eval;
  eval.mc_iterations = cfg.mc_iterations;
  eval.cost_model = core::CostModel::kBilledHours;
  eval.estimator = cfg.mode;
  core::SchedulingProblem problem(wf, estimator, *backend, eval);

  core::SchedulingOptions opt;
  opt.search.max_states = cfg.max_states;
  opt.search.batch_size = 32;
  opt.search.stale_wave_limit = 0;  // fixed budget: comparable across backends

  const core::ProbDeadline req{0.9, deadline};
  // One warm-up solve fills the estimator and staging caches; the timed
  // solves then measure the steady-state search regime.  Best-of-reps is the
  // least-interference estimate on a shared host.
  (void)problem.solve(req, opt);
  double best = 1e300;
  core::SearchStats stats;
  for (int rep = 0; rep < cfg.reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = problem.solve(req, opt);
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (dt < best) {
      best = dt;
      stats = result.stats;
    }
  }

  Row row;
  row.workflow = wf.name();
  row.tasks = wf.task_count();
  row.backend = backend_name;
  row.workers = backend_name == "serial" ? 0 : workers;
  row.estimator = core::to_string(cfg.mode);
  row.mc_iterations = cfg.mc_iterations;
  row.states_evaluated = stats.states_evaluated;
  row.states_pruned = stats.states_pruned;
  row.seconds = best;
  row.states_per_sec = static_cast<double>(stats.states_evaluated) / best;
  row.eval_stall_ms = stats.eval_stall_ms;
  row.ms_per_task = best * 1000.0 / static_cast<double>(wf.task_count());
  row.screen = problem.evaluator().screen_stats();  // tallies over all solves
  return row;
}

// --- WLog engine sweep ---------------------------------------------------

struct WlogRow {
  std::string engine;  ///< "interp" | "vm" | "vm+segments" | "native"
  std::size_t states_evaluated = 0;
  double seconds = 0;
  double states_per_sec = 0;
};

/// The canonical scheduling program (paper Figure 4 shape): totalcost sum
/// and maxtime longest-path, both recognized by the segment translator.
std::string wlog_program(double deadline) {
  char head[160];
  std::snprintf(head, sizeof(head),
                "cons T in maxtime(Path,T) satisfies deadline(90%%, %.0f).\n",
                deadline);
  return std::string("import(amazonec2).\nimport(workflow).\n"
                     "goal minimize Ct in totalcost(Ct).\n") +
         head +
         "var configs(Tid,Vid,Con) forall task(Tid) and vm(Vid).\n"
         "path(X,Y,Y,Tp) :- edge(X,Y), exetime(X,Vid,T),\n"
         "    configs(X,Vid,Con), Con == 1, Tp is T.\n"
         "path(X,Y,Z,Tp) :- edge(X,Z), Z \\== Y, path(Z,Y,Z2,T1),\n"
         "    exetime(X,Vid,T), configs(X,Vid,Con), Con == 1, Tp is T+T1.\n"
         "maxtime(Path,T) :- setof([Z,T1], path(root,tail,Z,T1), Set),\n"
         "    max(Set, [Path,T]).\n"
         "cost(Tid,Vid,C) :- price(Vid,Up), exetime(Tid,Vid,T),\n"
         "    configs(Tid,Vid,Con), C is T*Up*Con.\n"
         "totalcost(Ct) :- findall(C, cost(Tid,Vid,C), Bag), sum(Bag, Ct).\n";
}

WlogRow run_wlog_case(const workflow::Workflow& wf, const std::string& engine,
                      double deadline, std::size_t mc_iterations,
                      std::size_t max_states, int reps) {
  WlogRow row;
  row.engine = engine;
  double best = 1e300;
  for (int rep = 0; rep < reps + 1; ++rep) {  // first rep is warm-up
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t states = 0;
    if (engine == "native") {
      core::TaskTimeEstimator estimator(bench::env().catalog,
                                        bench::env().store);
      auto backend = vgpu::make_backend("serial", 0);
      core::EvalOptions eval;
      eval.mc_iterations = mc_iterations;
      core::SchedulingProblem problem(wf, estimator, *backend, eval);
      core::SchedulingOptions opt;
      opt.search.max_states = max_states;
      opt.search.stale_wave_limit = 0;
      const auto result = problem.solve({0.9, deadline}, opt);
      states = result.stats.states_evaluated;
    } else {
      core::DecoOptions opt;
      opt.backend = "serial";
      opt.wlog_max_states = max_states;
      opt.wlog_mc_iterations = mc_iterations;
      opt.wlog_exec = engine == "interp" ? "interp" : "vm";
      opt.wlog_segments = engine == "vm+segments";
      core::Deco deco(bench::env().catalog, bench::env().store, opt);
      const auto result = deco.solve_program(wlog_program(deadline), wf);
      // Throughput counts evaluated states either way; an infeasible search
      // still pays the full per-state inference cost.
      states = result.stats.states_evaluated;
      if (!result.ok && rep == 0) {
        std::fprintf(stderr, "wlog solve (%s): %s\n", engine.c_str(),
                     result.error.c_str());
      }
    }
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (rep == 0) continue;
    if (dt < best) {
      best = dt;
      row.states_evaluated = states;
    }
  }
  row.seconds = best;
  row.states_per_sec = static_cast<double>(row.states_evaluated) / best;
  return row;
}

bool write_json(const std::vector<Row>& rows, double guard_z,
                const workflow::Workflow& wlog_wf,
                const std::vector<WlogRow>& wlog_rows,
                std::size_t wlog_mc_iterations, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"solver_speedup\",\n");
  std::fprintf(f,
               "  \"unit\": {\"states_per_sec\": \"plans/s\", "
               "\"eval_stall_ms\": \"ms\", \"ms_per_task\": \"ms/task\", "
               "\"speedup_vs_serial\": \"x\", \"speedup_vs_mc\": \"x\"},\n");
  std::fprintf(f, "  \"hw_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"workflow\": \"%s\", \"tasks\": %zu, \"backend\": \"%s\", "
        "\"workers\": %zu, \"estimator\": \"%s\", \"mc_iterations\": %zu, "
        "\"states_evaluated\": %zu, \"states_pruned\": %zu, \"seconds\": "
        "%.6f, \"states_per_sec\": %.1f, \"eval_stall_ms\": %.2f, "
        "\"ms_per_task\": %.2f, \"speedup_vs_serial\": %.3f, "
        "\"speedup_vs_mc\": %.3f}%s\n",
        r.workflow.c_str(), r.tasks, r.backend.c_str(), r.workers,
        r.estimator.c_str(), r.mc_iterations, r.states_evaluated,
        r.states_pruned, r.seconds, r.states_per_sec, r.eval_stall_ms,
        r.ms_per_task, r.speedup_vs_serial, r.speedup_vs_mc,
        i + 1 < rows.size() ? "," : "");
  }
  // Estimator-hierarchy summary: aggregate screen verdicts across every
  // `auto` solve plus the auto-vs-mc throughput ratio per workflow at the
  // largest worker count (the acceptance configuration).
  core::ScreenStats total;
  for (const Row& r : rows) {
    total.screened += r.screen.screened;
    total.accepted += r.screen.accepted;
    total.rejected += r.screen.rejected;
    total.escalated += r.screen.escalated;
    total.qmc_early_stops += r.screen.qmc_early_stops;
    total.qmc_iterations_used += r.screen.qmc_iterations_used;
    total.qmc_iterations_saved += r.screen.qmc_iterations_saved;
    total.full_mc_verifications += r.screen.full_mc_verifications;
  }
  std::fprintf(f,
               "  ],\n  \"screening\": {\"guard_band_z\": %.3f, \"screened\": "
               "%zu, \"accepted\": %zu, \"rejected\": %zu, \"escalated\": "
               "%zu, \"qmc_early_stops\": %zu, \"qmc_iterations_used\": %zu, "
               "\"qmc_iterations_saved\": %zu, \"full_mc_verifications\": "
               "%zu, \"speedup_vs_mc\": [",
               guard_z, total.screened, total.accepted, total.rejected,
               total.escalated, total.qmc_early_stops,
               total.qmc_iterations_used, total.qmc_iterations_saved,
               total.full_mc_verifications);
  bool first = true;
  for (const Row& r : rows) {
    if (r.estimator != "auto") continue;
    std::fprintf(f,
                 "%s{\"workflow\": \"%s\", \"backend\": \"%s\", \"workers\": "
                 "%zu, \"speedup\": %.2f}",
                 first ? "" : ", ", r.workflow.c_str(), r.backend.c_str(),
                 r.workers, r.speedup_vs_mc);
    first = false;
  }
  std::fprintf(f, "]},\n");
  // Declarative-engine sweep: interp -> vm -> vm+segments, with the native
  // solver as the reference ceiling.  Ratios are vs the interp baseline
  // except native_vs_segments, which says how close the compiled WLog path
  // gets to the hand-written evaluator.
  auto rate_of = [&](const std::string& engine) {
    for (const WlogRow& r : wlog_rows) {
      if (r.engine == engine) return r.states_per_sec;
    }
    return 0.0;
  };
  const double interp_rate = rate_of("interp");
  const double segment_rate = rate_of("vm+segments");
  std::fprintf(f,
               "  \"wlog\": {\"workflow\": \"%s\", \"tasks\": %zu, "
               "\"mc_iterations\": %zu, \"rows\": [",
               wlog_wf.name().c_str(), wlog_wf.task_count(),
               wlog_mc_iterations);
  for (std::size_t i = 0; i < wlog_rows.size(); ++i) {
    const WlogRow& r = wlog_rows[i];
    std::fprintf(f,
                 "%s{\"engine\": \"%s\", \"states_evaluated\": %zu, "
                 "\"seconds\": %.6f, \"states_per_sec\": %.1f, "
                 "\"speedup_vs_interp\": %.3f}",
                 i == 0 ? "" : ", ", r.engine.c_str(), r.states_evaluated,
                 r.seconds, r.states_per_sec,
                 interp_rate > 0 ? r.states_per_sec / interp_rate : 0.0);
  }
  std::fprintf(f, "], \"native_vs_segments\": %.3f},\n",
               segment_rate > 0 ? rate_of("native") / segment_rate : 0.0);
  const std::string metrics =
      obs::to_json(obs::Registry::instance().snapshot());
  std::fprintf(f, "  \"metrics\": %s\n}\n", metrics.c_str());
  return std::fclose(f) == 0;
}

void print_row(const Row& row) {
  std::printf("%-12s %6zu %-7s %7zu %-5s %10.1f %8zu %10.2f %9.3f %9.3f\n",
              row.workflow.c_str(), row.tasks, row.backend.c_str(),
              row.workers, row.estimator.c_str(), row.states_per_sec,
              row.states_pruned, row.ms_per_task, row.speedup_vs_serial,
              row.speedup_vs_mc);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deco;
  std::string out = "BENCH_solver.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out = argv[i];
    }
  }
  obs::Registry::instance().set_enabled(true);
  bench::print_header(
      "solver_speedup",
      "Search-driven solver throughput: serial baseline vs work-stealing "
      "vgpu backend at 1/2/4/hw workers (billed-hours model, 1000 MC "
      "iterations, 96-state budget), each under the full-MC estimator and "
      "the tiered analytic/QMC hierarchy, with pipelined-driver stall time "
      "and per-task optimization overhead.");

  util::Rng rng(2015);
  std::vector<workflow::Workflow> workflows;
  workflows.push_back(workflow::make_montage_by_width(smoke ? 8 : 28, rng));
  workflows.push_back(workflow::make_cybershake(smoke ? 30 : 100, rng));

  // Worker sweep: 1, 2, 4 and the hardware thread count, deduplicated.
  std::vector<std::size_t> sweep{1, 2, 4};
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (std::find(sweep.begin(), sweep.end(), hw) == sweep.end()) {
    sweep.push_back(hw);
  }
  if (smoke) sweep = {2};

  CaseConfig mc_cfg;
  CaseConfig auto_cfg;
  auto_cfg.mode = core::EstimatorMode::kAuto;
  if (smoke) {
    mc_cfg.mc_iterations = auto_cfg.mc_iterations = 64;
    mc_cfg.max_states = auto_cfg.max_states = 16;
    mc_cfg.reps = auto_cfg.reps = 1;
  }

  std::vector<Row> rows;
  std::printf("%-12s %6s %-7s %7s %-5s %10s %8s %10s %9s %9s\n", "workflow",
              "tasks", "backend", "workers", "est", "states/s", "pruned",
              "ms/task", "vs_ser", "vs_mc");
  for (const auto& wf : workflows) {
    const double deadline = bench::deadline_bounds(wf).medium();
    // Serial baseline, then the worker sweep, under both estimators; the
    // mc row of each configuration is the denominator for speedup_vs_mc.
    Row serial_mc = run_case(wf, "serial", 0, deadline, mc_cfg);
    serial_mc.speedup_vs_serial = 1.0;
    serial_mc.speedup_vs_mc = 1.0;
    print_row(serial_mc);
    Row serial_auto = run_case(wf, "serial", 0, deadline, auto_cfg);
    serial_auto.speedup_vs_serial = 1.0;
    serial_auto.speedup_vs_mc =
        serial_auto.states_per_sec / serial_mc.states_per_sec;
    print_row(serial_auto);
    const double serial_mc_rate = serial_mc.states_per_sec;
    const double serial_auto_rate = serial_auto.states_per_sec;
    rows.push_back(std::move(serial_mc));
    rows.push_back(std::move(serial_auto));
    for (const std::size_t workers : sweep) {
      Row mc_row = run_case(wf, "vgpu", workers, deadline, mc_cfg);
      mc_row.speedup_vs_serial = mc_row.states_per_sec / serial_mc_rate;
      mc_row.speedup_vs_mc = 1.0;
      print_row(mc_row);
      Row auto_row = run_case(wf, "vgpu", workers, deadline, auto_cfg);
      auto_row.speedup_vs_serial = auto_row.states_per_sec / serial_auto_rate;
      auto_row.speedup_vs_mc = auto_row.states_per_sec / mc_row.states_per_sec;
      print_row(auto_row);
      rows.push_back(std::move(mc_row));
      rows.push_back(std::move(auto_row));
    }
  }
  // WLog engine sweep on a pipeline workflow (linear path count keeps the
  // interpreter baseline tractable — maxtime enumerates every DAG path).
  const auto wlog_wf = workflow::make_pipeline(smoke ? 5 : 10, rng);
  // Generous deadline: the sweep measures per-state inference throughput,
  // and a feasible search exercises the same constraint + goal path on
  // every state without early-infeasible short-circuits.
  const double wlog_deadline = 2.0 * bench::deadline_bounds(wlog_wf).d_max;
  const std::size_t wlog_iters = smoke ? 32 : 200;
  const std::size_t wlog_states = smoke ? 12 : 48;
  const int wlog_reps = smoke ? 1 : 2;
  std::printf("\nwlog engines (%s, %zu tasks, %zu MC iterations):\n",
              wlog_wf.name().c_str(), wlog_wf.task_count(), wlog_iters);
  std::printf("%-12s %8s %10s %10s %9s\n", "engine", "states", "seconds",
              "states/s", "vs_int");
  std::vector<WlogRow> wlog_rows;
  for (const char* engine : {"interp", "vm", "vm+segments", "native"}) {
    wlog_rows.push_back(run_wlog_case(wlog_wf, engine, wlog_deadline,
                                      wlog_iters, wlog_states, wlog_reps));
    const WlogRow& r = wlog_rows.back();
    std::printf("%-12s %8zu %10.4f %10.1f %9.3f\n", r.engine.c_str(),
                r.states_evaluated, r.seconds, r.states_per_sec,
                wlog_rows[0].states_per_sec > 0
                    ? r.states_per_sec / wlog_rows[0].states_per_sec
                    : 0.0);
  }

  if (!write_json(rows, core::EvalOptions{}.screen_guard_z, wlog_wf,
                  wlog_rows, wlog_iters, out)) {
    return 1;
  }
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
