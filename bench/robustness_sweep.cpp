// Robustness sweep: how do Deco's plans survive a cloud that actually
// fails?  Sweeps the failure-injection level (instance crashes, transient
// task failures, stragglers, boot failures) and compares three provisioning
// strategies on Montage and CyberShake:
//
//   deco-static     Deco's plan executed open-loop with fault-tolerant
//                   retries but no replanning,
//   deco-reactive   the same plan under wms::ReactiveEngine, which replans
//                   the residual DAG after failures / deadline risk,
//   autoscaling     the Autoscaling baseline executed open-loop.
//
// Reported per (workflow, scheduler, level): deadline-miss rate, average
// cost and its inflation over the failure-free run of the same scheduler,
// replans per run, and injected disruptions per run.  A second grid sweeps
// control-plane API faults, a third sweeps the wall-clock solve budget
// (anytime plan quality vs budget), and a fourth is the *sharding* sweep:
// the same ensemble of simulated executions fanned over
// sim::EnsembleRunner at increasing worker counts, verifying the
// sharded == serial bit-identity contract while timing the sweep.  All run
// loops go through EnsembleRunner (per-run seed substreams), so every grid
// is itself sharded.  Results go to stdout and BENCH_robustness.json so the
// robustness trajectory is tracked across PRs.
//
// Usage: robustness_sweep [output.json] [--smoke]
//   --smoke: reduced run counts for CI (same JSON structure, minutes -> s).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "cloud/control_plane.hpp"
#include "obs/metrics.hpp"
#include "sim/ensemble.hpp"
#include "util/budget.hpp"
#include "util/table.hpp"
#include "wms/reactive.hpp"

namespace {

using namespace deco;

struct Level {
  std::string name;
  sim::FailureModelOptions fm;
};

/// none/low/medium/high presets.  MTBFs of 6h / 2h / 0.5h bracket the
/// regime where a multi-hour workflow sees zero, a few, or many crashes.
std::vector<Level> failure_levels() {
  std::vector<Level> levels;
  levels.push_back({"none", {}});
  sim::FailureModelOptions low;
  low.crash_mtbf_s = 6 * 3600;
  low.task_failure_prob = 0.01;
  low.straggler_prob = 0.02;
  levels.push_back({"low", low});
  sim::FailureModelOptions medium;
  medium.crash_mtbf_s = 2 * 3600;
  medium.task_failure_prob = 0.03;
  medium.straggler_prob = 0.05;
  medium.boot_failure_prob = 0.01;
  levels.push_back({"medium", medium});
  sim::FailureModelOptions high;
  high.crash_mtbf_s = 1800;
  high.task_failure_prob = 0.08;
  high.straggler_prob = 0.10;
  high.boot_failure_prob = 0.03;
  levels.push_back({"high", high});
  return levels;
}

struct Row {
  std::string workflow;
  std::size_t tasks = 0;
  std::string scheduler;
  std::string level;
  int runs = 0;
  double deadline_s = 0;
  double miss_rate = 0;
  double avg_cost = 0;
  double cost_inflation = 1;  ///< avg_cost / same scheduler at level "none"
  double avg_makespan = 0;
  double avg_replans = 0;
  double avg_disruptions = 0;
};

/// Runs per sweep point; --smoke cuts it for CI.
int g_runs = 15;

/// Open-loop execution: the static plan rides out every failure through the
/// executor's retry machinery; nobody replans.  The per-run loop is an
/// EnsembleRunner sweep — run i draws from substream (seed, i).
Row run_static(const workflow::Workflow& wf, const sim::Plan& plan,
               const std::string& scheduler, const Level& level,
               double deadline_s, std::uint64_t seed,
               const sim::EnsembleOptions& exec) {
  const sim::FailureModel model(level.fm);
  sim::ExecutorOptions options;
  options.failures = &model;
  Row row;
  row.workflow = wf.name();
  row.tasks = wf.task_count();
  row.scheduler = scheduler;
  row.level = level.name;
  row.runs = g_runs;
  row.deadline_s = deadline_s;
  std::vector<sim::ExecutionResult> results(static_cast<std::size_t>(g_runs));
  sim::EnsembleRunner runner(exec);
  runner.run(results.size(), seed, [&](const sim::RunContext& ctx) {
    util::Rng rng(ctx.seed);
    results[ctx.index] =
        sim::simulate_execution(wf, plan, bench::env().catalog, rng, options);
  });
  int missed = 0;
  for (const sim::ExecutionResult& r : results) {
    if (!r.finished || r.makespan > deadline_s) ++missed;
    row.avg_cost += r.total_cost;
    row.avg_makespan += r.makespan;
    row.avg_disruptions += static_cast<double>(r.failures.total_disruptions());
  }
  row.miss_rate = static_cast<double>(missed) / g_runs;
  row.avg_cost /= g_runs;
  row.avg_makespan /= g_runs;
  row.avg_disruptions /= g_runs;
  return row;
}

/// Closed-loop execution through the reactive engine (monitor + residual
/// replanning, graceful fallback on solver trouble), fanned as a reactive
/// ensemble: each run owns a private engine + Deco scheduler.
Row run_reactive(const workflow::Workflow& wf,
                 const core::SchedulingOptions& sched, const Level& level,
                 const core::ProbDeadline& req, std::uint64_t seed,
                 const sim::EnsembleOptions& exec) {
  const sim::FailureModel model(level.fm);
  wms::ReactiveEnsembleOptions options;
  options.base.executor.failures = &model;
  options.base.max_replans = 4;
  options.base.seed = seed;
  options.exec = exec;
  const wms::SchedulerFactory factory = wms::make_deco_scheduler_factory(
      bench::env().catalog, bench::env().store, sched);
  const wms::ReactiveEnsembleResult ensemble = wms::run_reactive_ensemble(
      bench::env().catalog, bench::env().store, wf, req,
      static_cast<std::size_t>(g_runs), factory, options);
  Row row;
  row.workflow = wf.name();
  row.tasks = wf.task_count();
  row.scheduler = "deco-reactive";
  row.level = level.name;
  row.runs = g_runs;
  row.deadline_s = req.deadline_s;
  int missed = 0;
  for (const wms::ReactiveReport& report : ensemble.reports) {
    if (!report.met_deadline) ++missed;
    row.avg_cost += report.total_cost;
    row.avg_makespan += report.makespan;
    row.avg_replans += static_cast<double>(report.replans);
    row.avg_disruptions +=
        static_cast<double>(report.failures.total_disruptions());
  }
  row.miss_rate = static_cast<double>(missed) / g_runs;
  row.avg_cost /= g_runs;
  row.avg_makespan /= g_runs;
  row.avg_replans /= g_runs;
  row.avg_disruptions /= g_runs;
  return row;
}

/// One cell of the control-plane fault grid: throttle rate x capacity-outage
/// duration, executed open-loop through cloud::ControlPlane.
struct CloudRow {
  double throttle_rate = 0;   ///< API tokens per second (0 = unthrottled)
  double outage_s = 0;        ///< mean capacity-outage duration (0 = none)
  int runs = 0;
  double avg_makespan = 0;
  double makespan_inflation = 1;  ///< vs the fault-free cell of the grid
  cloud::ApiStats api;            ///< summed over all runs of the cell
};

cloud::ApiStats& operator+=(cloud::ApiStats& a, const cloud::ApiStats& b) {
  a.calls += b.calls;
  a.throttled += b.throttled;
  a.capacity_denials += b.capacity_denials;
  a.transient_errors += b.transient_errors;
  a.retries += b.retries;
  a.fallbacks += b.fallbacks;
  a.exhausted += b.exhausted;
  a.breaker_opens += b.breaker_opens;
  a.breaker_waits += b.breaker_waits;
  a.spot_interruptions += b.spot_interruptions;
  return a;
}

/// Sweeps API-level faults: unlike the failure-model sweep above (which
/// kills instances and tasks), these faults only delay or redirect
/// *provisioning*, so the signature is makespan inflation plus retry and
/// fallback counts rather than deadline misses.  Each cell's runs are an
/// EnsembleRunner sweep; each run owns a fresh (stateful) control plane.
std::vector<CloudRow> run_cloud_sweep(const workflow::Workflow& wf,
                                      const sim::Plan& plan,
                                      const sim::EnsembleOptions& exec,
                                      util::Table& table) {
  const double throttle_rates[] = {0.0, 0.2, 0.05};
  const double outage_durations[] = {0.0, 300.0, 1800.0};
  std::vector<CloudRow> rows;
  double base_makespan = 0;
  for (const double rate : throttle_rates) {
    for (const double outage : outage_durations) {
      CloudRow row;
      row.throttle_rate = rate;
      row.outage_s = outage;
      row.runs = g_runs;
      const std::size_t n = static_cast<std::size_t>(g_runs);
      std::vector<double> makespans(n, 0);
      std::vector<cloud::ApiStats> api(n);
      sim::EnsembleRunner runner(exec);
      runner.run(n, 4000, [&](const sim::RunContext& ctx) {
        cloud::ControlPlaneOptions cp;
        cp.faults.throttle_rate_per_s = rate;
        cp.faults.throttle_burst = 2;
        cp.faults.capacity_mtbo_s = outage > 0 ? 3600.0 : 0.0;
        cp.faults.capacity_outage_s = outage;
        cp.faults.transient_error_prob = 0.02;
        cp.seed = ctx.seed;
        cloud::ControlPlane plane(bench::env().catalog, cp);
        sim::ExecutorOptions options;
        options.control = &plane;
        util::Rng rng(sim::substream_seed(ctx.seed, 1));
        const auto r = sim::simulate_execution(wf, plan, bench::env().catalog,
                                               rng, options);
        makespans[ctx.index] = r.makespan;
        api[ctx.index] = plane.stats();
      });
      for (std::size_t i = 0; i < n; ++i) {
        row.avg_makespan += makespans[i];
        row.api += api[i];
      }
      row.avg_makespan /= g_runs;
      if (rate == 0.0 && outage == 0.0) base_makespan = row.avg_makespan;
      row.makespan_inflation =
          base_makespan > 0 ? row.avg_makespan / base_makespan : 1.0;
      table.add_row({wf.name(), util::Table::num(rate, 2),
                     util::Table::num(outage, 0),
                     util::Table::num(row.makespan_inflation, 3),
                     util::Table::num(static_cast<double>(row.api.throttled) /
                                          g_runs, 1),
                     util::Table::num(static_cast<double>(row.api.retries) /
                                          g_runs, 1),
                     util::Table::num(static_cast<double>(row.api.fallbacks) /
                                          g_runs, 1)});
      rows.push_back(row);
    }
  }
  return rows;
}

/// One point of the solve-budget sweep: plan quality and solve time as the
/// wall-clock budget shrinks from unlimited down to ~1 ms.
struct BudgetRow {
  std::string workflow;
  double budget_ms = 0;  ///< 0 = unlimited
  double solve_ms = 0;
  double cost = 0;
  double cost_vs_unlimited = 1;
  bool feasible = false;
  bool exhausted = false;
  std::size_t states = 0;
};

/// Anytime-quality curve: re-solve each workflow under progressively
/// tighter wall budgets.  The contract under test is the one the docs
/// promise — the solve always comes back quickly with a full-size plan,
/// and quality degrades gracefully (never catastrophically) as the budget
/// shrinks.
std::vector<BudgetRow> run_budget_sweep(core::Deco& engine,
                                        const core::SchedulingOptions& sched,
                                        util::Table& table) {
  const double budgets_ms[] = {0.0, 200.0, 50.0, 10.0, 2.0};
  std::vector<BudgetRow> rows;
  for (const int which : {0, 1}) {
    util::Rng wf_rng(7);
    const workflow::Workflow wf = which == 0
                                      ? workflow::make_montage(1, wf_rng)
                                      : workflow::make_cybershake(50, wf_rng);
    const core::ProbDeadline req{0.9, bench::deadline_bounds(wf).medium()};
    double unlimited_cost = 0;
    for (const double budget_ms : budgets_ms) {
      BudgetRow row;
      row.workflow = wf.name();
      row.budget_ms = budget_ms;
      util::SolveBudget spec;
      spec.wall_ms = budget_ms;
      util::BudgetTracker tracker(spec);
      core::SchedulingOptions opts = sched;
      if (budget_ms > 0) opts.search.budget = &tracker;
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = engine.schedule(wf, req, opts);
      row.solve_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
      row.cost = r.evaluation.mean_cost;
      row.feasible = r.evaluation.feasible;
      row.exhausted = r.budget.budget_exhausted;
      row.states = r.stats.states_evaluated;
      if (budget_ms == 0.0) unlimited_cost = row.cost;
      row.cost_vs_unlimited =
          unlimited_cost > 0 ? row.cost / unlimited_cost : 1.0;
      table.add_row({row.workflow,
                     budget_ms > 0 ? util::Table::num(budget_ms, 0) : "inf",
                     util::Table::num(row.solve_ms, 1),
                     util::Table::num(row.cost, 2),
                     util::Table::num(row.cost_vs_unlimited, 3),
                     row.feasible ? "yes" : "no",
                     row.exhausted ? "yes" : "no"});
      rows.push_back(row);
    }
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Sharding sweep: the same ensemble of simulated executions at increasing
// worker counts.  The contract is sharded == serial bit-identical; the row
// is only emitted as identical after comparing every run's full fingerprint
// against the serial reference.  On an hw_threads=1 host the timing column
// shows parity (thread start-up overhead, even); the structure is what the
// multicore host consumes.

struct ShardRow {
  std::size_t workers = 0;  ///< worker threads (0 = serial reference loop)
  int runs = 0;
  double wall_ms = 0;
  double speedup_vs_serial = 1;
  bool bit_identical = true;
  std::size_t steals = 0;
  std::size_t chunks = 0;
};

/// Bit-exact fingerprint of one execution's observable outputs (hex float
/// formatting, so equal strings imply equal doubles bit for bit).
std::string fingerprint(const sim::ExecutionResult& r) {
  char buf[160];
  std::string out;
  std::snprintf(buf, sizeof(buf), "%a|%a|%a|%zu|%zu|%zu|", r.makespan,
                r.total_cost, r.instance_cost, r.instances_used,
                r.attempts.size(), r.failures.total_disruptions());
  out += buf;
  for (const sim::TaskAttempt& a : r.attempts) {
    std::snprintf(buf, sizeof(buf), "%u:%u:%a:%a:%d;", a.task, a.attempt,
                  a.start, a.end, static_cast<int>(a.outcome));
    out += buf;
  }
  return out;
}

std::vector<ShardRow> run_sharding_sweep(const workflow::Workflow& wf,
                                         const sim::Plan& plan,
                                         const Level& level, int runs,
                                         util::Table& table) {
  const sim::FailureModel model(level.fm);
  sim::ExecutorOptions options;
  options.failures = &model;
  const auto sweep = [&](std::size_t workers) {
    std::vector<std::string> prints(static_cast<std::size_t>(runs));
    sim::EnsembleOptions exec;
    exec.workers = workers;
    sim::EnsembleRunner runner(exec);
    const sim::EnsembleReport report =
        runner.run(prints.size(), 6000, [&](const sim::RunContext& ctx) {
          util::Rng rng(ctx.seed);
          prints[ctx.index] = fingerprint(sim::simulate_execution(
              wf, plan, bench::env().catalog, rng, options));
        });
    return std::make_pair(std::move(prints), report);
  };

  const std::size_t hw = std::thread::hardware_concurrency();
  std::vector<std::size_t> worker_counts = {0, 1, 2, 4};
  if (hw > 4) worker_counts.push_back(hw);

  std::vector<ShardRow> rows;
  std::vector<std::string> reference;
  double serial_ms = 0;
  for (const std::size_t workers : worker_counts) {
    auto [prints, report] = sweep(workers);
    ShardRow row;
    row.workers = workers;
    row.runs = runs;
    row.wall_ms = report.wall_ms;
    row.steals = report.steals;
    row.chunks = report.chunks;
    if (workers == 0) {
      reference = std::move(prints);
      serial_ms = row.wall_ms;
    } else {
      row.bit_identical = prints == reference;
    }
    row.speedup_vs_serial = row.wall_ms > 0 ? serial_ms / row.wall_ms : 1.0;
    table.add_row({wf.name(),
                   workers == 0 ? "serial" : util::Table::num(
                                                 static_cast<double>(workers), 0),
                   util::Table::num(row.wall_ms, 2),
                   util::Table::num(row.speedup_vs_serial, 2),
                   row.bit_identical ? "yes" : "NO",
                   util::Table::num(static_cast<double>(row.steals), 0)});
    rows.push_back(row);
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Regional-weather sweep: the same reactive Montage ensemble under a
// weather{off, storms} x evacuation{on, off} grid.  Under storms the
// evacuation-on rows should meet the deadline more often (the engine cuts
// ahead of the forecast and replans in a calm region); the weather-off rows
// double as the bit-identity gate — the weather machinery *plumbed but
// disabled* must fingerprint identically to a control plane with no weather
// configuration at all, i.e. to the pre-weather traces.

struct RegionRow {
  std::string weather;      ///< "off" or "storms"
  bool evacuation = false;
  int runs = 0;
  double met_rate = 0;      ///< fraction of runs meeting the deadline
  double avg_cost = 0;
  double avg_replans = 0;
  double avg_evacuations = 0;
  double avg_storm_denials = 0;
  /// Weather-off rows only: fingerprints equal the no-weather reference.
  bool bit_identical = true;
};

std::string fingerprint(const wms::ReactiveReport& r) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%a|%a|%c%c|%zu|%zu|%zu|%zu|%zu|", r.makespan,
                r.total_cost, r.completed ? 'c' : 'i', r.met_deadline ? 'm' : 'x',
                r.segments, r.replans, r.proactive_replans,
                r.regional_evacuations, r.api.calls);
  return std::string(buf) + r.last_scheduler;
}

std::vector<RegionRow> run_region_sweep(const workflow::Workflow& wf,
                                        const core::SchedulingOptions& sched,
                                        const core::ProbDeadline& req,
                                        const sim::EnsembleOptions& exec,
                                        util::Table& table) {
  sim::FailureModelOptions fm;
  fm.crash_mtbf_s = 6 * 3600;
  fm.task_failure_prob = 0.01;
  const sim::FailureModel model(fm);
  const wms::SchedulerFactory factory = wms::make_deco_scheduler_factory(
      bench::env().catalog, bench::env().store, sched);

  enum class Weather { kAbsent, kDisabled, kStorms };
  const auto sweep = [&](Weather weather, bool evacuate) {
    wms::ReactiveEnsembleOptions options;
    options.base.executor.failures = &model;
    options.base.max_replans = 4;
    options.base.seed = 7000;
    options.base.evacuate_on_storm = evacuate;
    options.exec = exec;
    cloud::ControlPlaneOptions cp;
    cp.faults.transient_error_prob = 0.02;
    cp.seed = 7000;
    if (weather == Weather::kDisabled) {
      // Every knob off-default except the master switch: the disabled
      // process must consume no entropy (bit-identical to kAbsent).
      cp.faults.weather.storm_duration_s = 77;
      cp.faults.weather.crash_hazard = 9.0;
      cp.faults.weather.capacity_hazard = 0.7;
    } else if (weather == Weather::kStorms) {
      // The home region is under persistent bad weather (region_hazard
      // skew: storms there arrive 20x as often as in the failover region,
      // so the skew survives per-segment weather re-rolls); storms black
      // out capacity, reclaim co-located spot instances together and
      // multiply crash rates.  Region fallback is off — a regional
      // capacity loss cannot be served transparently from another region;
      // moving the workflow (and its frontier data) is exactly what the
      // evacuation machinery prices — so the rider stalls until the storm
      // clears while evacuation-on cuts ahead of the forecast and replans
      // in the calm region.
      cp.faults.weather.storm_mtbs_s = req.deadline_s / 4.0;
      cp.faults.weather.storm_duration_s = req.deadline_s;
      cp.faults.weather.capacity_hazard = 1.0;
      cp.faults.weather.crash_hazard = 6.0;
      cp.faults.weather.region_hazard = {1.0, 0.05};
      cp.allow_region_fallback = false;
    }
    options.base.control = cp;
    return wms::run_reactive_ensemble(bench::env().catalog, bench::env().store,
                                      wf, req,
                                      static_cast<std::size_t>(g_runs), factory,
                                      options);
  };

  const auto prints_of = [](const wms::ReactiveEnsembleResult& r) {
    std::vector<std::string> prints;
    for (const wms::ReactiveReport& report : r.reports)
      prints.push_back(fingerprint(report));
    return prints;
  };

  // The no-weather reference: what every trace looked like before the
  // weather machinery existed.
  const std::vector<std::string> reference =
      prints_of(sweep(Weather::kAbsent, true));

  std::vector<RegionRow> rows;
  for (const bool storms : {false, true}) {
    for (const bool evacuate : {true, false}) {
      const wms::ReactiveEnsembleResult r =
          sweep(storms ? Weather::kStorms : Weather::kDisabled, evacuate);
      RegionRow row;
      row.weather = storms ? "storms" : "off";
      row.evacuation = evacuate;
      row.runs = g_runs;
      for (const wms::ReactiveReport& report : r.reports) {
        row.met_rate += report.met_deadline ? 1.0 : 0.0;
        row.avg_cost += report.total_cost;
        row.avg_replans += static_cast<double>(report.replans);
        row.avg_evacuations +=
            static_cast<double>(report.regional_evacuations);
        row.avg_storm_denials += static_cast<double>(report.api.storm_denials);
      }
      row.met_rate /= g_runs;
      row.avg_cost /= g_runs;
      row.avg_replans /= g_runs;
      row.avg_evacuations /= g_runs;
      row.avg_storm_denials /= g_runs;
      if (!storms) row.bit_identical = prints_of(r) == reference;
      table.add_row({wf.name(), row.weather, evacuate ? "on" : "off",
                     util::Table::num(row.met_rate * 100, 0) + "%",
                     util::Table::num(row.avg_cost, 2),
                     util::Table::num(row.avg_evacuations, 2),
                     util::Table::num(row.avg_storm_denials, 1),
                     storms ? "-" : (row.bit_identical ? "yes" : "NO")});
      rows.push_back(row);
    }
  }
  return rows;
}

bool write_json(const std::vector<Row>& rows, const std::vector<CloudRow>& cloud_rows,
                const std::vector<BudgetRow>& budget_rows,
                const std::vector<RegionRow>& region_rows,
                const std::vector<ShardRow>& shard_rows,
                const std::string& shard_workload, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"robustness_sweep\",\n");
  std::fprintf(f,
               "  \"unit\": {\"miss_rate\": \"fraction of runs\", "
               "\"avg_cost\": \"USD\", \"cost_inflation\": "
               "\"vs failure-free same scheduler\"},\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"workflow\": \"%s\", \"tasks\": %zu, \"scheduler\": \"%s\", "
        "\"level\": \"%s\", \"runs\": %d, \"deadline_s\": %.1f, "
        "\"miss_rate\": %.3f, \"avg_cost\": %.4f, \"cost_inflation\": %.3f, "
        "\"avg_makespan\": %.1f, \"avg_replans\": %.2f, "
        "\"avg_disruptions\": %.2f}%s\n",
        r.workflow.c_str(), r.tasks, r.scheduler.c_str(), r.level.c_str(),
        r.runs, r.deadline_s, r.miss_rate, r.avg_cost, r.cost_inflation,
        r.avg_makespan, r.avg_replans, r.avg_disruptions,
        i + 1 < rows.size() ? "," : "");
  }
  // Control-plane fault grid: throttle rate x outage duration, with the
  // summed cloud.api.* statistics of each cell.
  std::fprintf(f, "  ],\n  \"cloud_api\": [\n");
  for (std::size_t i = 0; i < cloud_rows.size(); ++i) {
    const CloudRow& r = cloud_rows[i];
    std::fprintf(
        f,
        "    {\"throttle_rate_per_s\": %.2f, \"outage_s\": %.0f, "
        "\"runs\": %d, \"avg_makespan\": %.1f, \"makespan_inflation\": %.3f, "
        "\"calls\": %zu, \"throttled\": %zu, \"capacity_denials\": %zu, "
        "\"transient_errors\": %zu, \"retries\": %zu, \"fallbacks\": %zu, "
        "\"exhausted\": %zu, \"breaker_opens\": %zu}%s\n",
        r.throttle_rate, r.outage_s, r.runs, r.avg_makespan,
        r.makespan_inflation, r.api.calls, r.api.throttled,
        r.api.capacity_denials, r.api.transient_errors, r.api.retries,
        r.api.fallbacks, r.api.exhausted, r.api.breaker_opens,
        i + 1 < cloud_rows.size() ? "," : "");
  }
  // Solve-budget sweep: anytime plan quality vs wall-clock budget
  // (budget_ms 0 = unlimited; cost_vs_unlimited is the graceful-degradation
  // curve tracked across PRs).
  std::fprintf(f, "  ],\n  \"budgets\": [\n");
  for (std::size_t i = 0; i < budget_rows.size(); ++i) {
    const BudgetRow& r = budget_rows[i];
    std::fprintf(
        f,
        "    {\"workflow\": \"%s\", \"budget_ms\": %.1f, \"solve_ms\": %.2f, "
        "\"cost\": %.4f, \"cost_vs_unlimited\": %.3f, \"feasible\": %s, "
        "\"budget_exhausted\": %s, \"states_evaluated\": %zu}%s\n",
        r.workflow.c_str(), r.budget_ms, r.solve_ms, r.cost,
        r.cost_vs_unlimited, r.feasible ? "true" : "false",
        r.exhausted ? "true" : "false", r.states,
        i + 1 < budget_rows.size() ? "," : "");
  }
  // Regional-weather grid: weather{off, storms} x evacuation{on, off} on
  // the reactive Montage ensemble.  Weather-off rows carry the bit-identity
  // verdict against the no-weather reference traces.
  std::fprintf(f, "  ],\n  \"regions\": [\n");
  for (std::size_t i = 0; i < region_rows.size(); ++i) {
    const RegionRow& r = region_rows[i];
    std::fprintf(
        f,
        "    {\"weather\": \"%s\", \"evacuation\": %s, \"runs\": %d, "
        "\"met_rate\": %.3f, \"avg_cost\": %.4f, \"avg_replans\": %.2f, "
        "\"avg_evacuations\": %.2f, \"avg_storm_denials\": %.1f, "
        "\"bit_identical\": %s}%s\n",
        r.weather.c_str(), r.evacuation ? "true" : "false", r.runs, r.met_rate,
        r.avg_cost, r.avg_replans, r.avg_evacuations, r.avg_storm_denials,
        r.bit_identical ? "true" : "false",
        i + 1 < region_rows.size() ? "," : "");
  }
  // Sharded-vs-serial ensemble sweep: wall clock and bit-identity per
  // worker count (workers 0 = the serial reference loop).  On the
  // hw_threads=1 bench host speedup shows parity; bit_identical is the
  // contract and must be true at every worker count.
  std::fprintf(f,
               "  ],\n  \"sharding\": {\n    \"workload\": \"%s\",\n"
               "    \"hw_threads\": %u,\n    \"rows\": [\n",
               shard_workload.c_str(), std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < shard_rows.size(); ++i) {
    const ShardRow& r = shard_rows[i];
    std::fprintf(
        f,
        "      {\"workers\": %zu, \"runs\": %d, \"wall_ms\": %.2f, "
        "\"speedup_vs_serial\": %.3f, \"bit_identical\": %s, "
        "\"chunks\": %zu, \"steals\": %zu}%s\n",
        r.workers, r.runs, r.wall_ms, r.speedup_vs_serial,
        r.bit_identical ? "true" : "false", r.chunks, r.steals,
        i + 1 < shard_rows.size() ? "," : "");
  }
  // Aggregate simulator/reactive/control-plane counters captured over the
  // whole sweep (sim.failures.*, sim.ensemble.*, wms.reactive.*,
  // cloud.api.*, cloud.breaker.*, budget.*), recorded alongside the summary
  // rows.
  const std::string metrics =
      obs::to_json(obs::Registry::instance().snapshot());
  std::fprintf(f, "    ]\n  },\n  \"metrics\": %s\n}\n", metrics.c_str());
  return std::fclose(f) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deco;
  using bench::env;
  std::string out = "BENCH_robustness.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out = argv[i];
    }
  }
  if (smoke) g_runs = 4;
  obs::Registry::instance().set_enabled(true);
  bench::print_header(
      "robustness_sweep",
      "Deadline-miss rate, cost inflation and replans/run under injected\n"
      "failures: Deco static vs Deco reactive vs Autoscaling, failure\n"
      "levels none/low/medium/high; all run loops sharded over\n"
      "sim::EnsembleRunner (serial == sharded bit-identical).");

  // Reduced search budget: the sweep replans repeatedly, so each solve is
  // bounded well below the default 2048-state budget.
  core::SchedulingOptions sched;
  sched.search.max_states = 192;

  core::Deco engine(env().catalog, env().store);

  // One shared worker pool for every grid (thread start-up amortized across
  // sweeps); the sharding sweep below builds its own pools per worker count.
  util::WorkStealingPool pool;
  sim::EnsembleOptions exec;
  exec.pool = &pool;

  const auto levels = failure_levels();
  std::vector<Row> rows;
  util::Table table({"workflow", "scheduler", "level", "miss", "cost",
                     "inflation", "replans", "disrupt"});

  for (const int which : {0, 1}) {
    util::Rng wf_rng(7);
    const workflow::Workflow wf = which == 0
                                      ? workflow::make_montage(1, wf_rng)
                                      : workflow::make_cybershake(50, wf_rng);
    const auto bounds = bench::deadline_bounds(wf);
    const double deadline = bounds.medium();
    const core::ProbDeadline req{0.9, deadline};

    const sim::Plan deco_plan = engine.schedule(wf, req, sched).plan;
    core::TaskTimeEstimator estimator(env().catalog, env().store);
    const sim::Plan as_plan =
        baselines::Autoscaling(wf, estimator).solve(deadline).plan;

    // Failure-free cost per scheduler, the denominator of cost_inflation.
    double base_cost[3] = {0, 0, 0};
    for (const Level& level : levels) {
      Row per[3];
      per[0] = run_static(wf, deco_plan, "deco-static", level, deadline,
                          1000 + static_cast<std::uint64_t>(which), exec);
      per[1] = run_reactive(wf, sched, level, req,
                            2000 + static_cast<std::uint64_t>(which), exec);
      per[2] = run_static(wf, as_plan, "autoscaling", level, deadline,
                          3000 + static_cast<std::uint64_t>(which), exec);
      for (int s = 0; s < 3; ++s) {
        if (level.name == "none") base_cost[s] = per[s].avg_cost;
        per[s].cost_inflation =
            base_cost[s] > 0 ? per[s].avg_cost / base_cost[s] : 1.0;
        table.add_row({per[s].workflow, per[s].scheduler, per[s].level,
                       util::Table::num(per[s].miss_rate * 100, 0) + "%",
                       util::Table::num(per[s].avg_cost, 2),
                       util::Table::num(per[s].cost_inflation, 2),
                       util::Table::num(per[s].avg_replans, 1),
                       util::Table::num(per[s].avg_disruptions, 1)});
        rows.push_back(per[s]);
      }
    }
  }

  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nShape check: miss rate grows with the failure level for every\n"
      "scheduler.  Where the deadline leaves slack (Montage), deco-reactive\n"
      "converts static misses into replans and extra spend; where the\n"
      "deadline is tight even failure-free (CyberShake), replanning buys\n"
      "little and mostly shows up as cost inflation.\n");

  // Control-plane API fault grid on Montage with the Deco plan: throttling
  // and capacity outages delay acquisition (retries, fallbacks) but must
  // never fail a run outright.
  std::printf("\ncontrol-plane fault grid (Montage, deco plan):\n");
  util::Table cloud_table({"workflow", "throttle/s", "outage_s", "inflation",
                           "throttled", "retries", "fallbacks"});
  util::Rng wf_rng(7);
  const workflow::Workflow montage = workflow::make_montage(1, wf_rng);
  const auto montage_req = core::ProbDeadline{
      0.9, bench::deadline_bounds(montage).medium()};
  const sim::Plan montage_plan =
      engine.schedule(montage, montage_req, sched).plan;
  const std::vector<CloudRow> cloud_rows =
      run_cloud_sweep(montage, montage_plan, exec, cloud_table);
  std::printf("%s", cloud_table.to_string().c_str());

  // Anytime-quality sweep: plan cost vs shrinking wall-clock solve budget.
  std::printf("\nsolve-budget sweep (anytime plan quality):\n");
  util::Table budget_table({"workflow", "budget_ms", "solve_ms", "cost",
                            "vs_unlimited", "feasible", "exhausted"});
  const std::vector<BudgetRow> budget_rows =
      run_budget_sweep(engine, sched, budget_table);
  std::printf("%s", budget_table.to_string().c_str());

  // Regional-weather grid: deadline-met rate and evacuations with the
  // failover machinery on vs off, plus the weather-off bit-identity gate.
  std::printf("\nregional-weather grid (Montage, reactive ensemble):\n");
  util::Table region_table({"workflow", "weather", "evac", "met", "cost",
                            "evacs", "denials", "identical"});
  const std::vector<RegionRow> region_rows =
      run_region_sweep(montage, sched, montage_req, exec, region_table);
  std::printf("%s", region_table.to_string().c_str());
  std::printf(
      "Shape check: under storms the evacuation-on row meets the deadline\n"
      "at least as often as evacuation-off; weather-off rows must be\n"
      "bit-identical to the no-weather reference.\n");
  for (const RegionRow& r : region_rows) {
    if (!r.bit_identical) {
      std::fprintf(stderr,
                   "FAIL: disabled weather diverged from the no-weather "
                   "reference (evacuation %s)\n",
                   r.evacuation ? "on" : "off");
      return 1;
    }
  }

  // Sharding sweep: serial vs sharded wall clock + bit-identity, Montage
  // deco plan under the medium failure level.
  const int shard_runs = smoke ? 32 : 128;
  std::printf("\nsharded ensemble sweep (Montage, medium failures, %d runs):\n",
              shard_runs);
  util::Table shard_table(
      {"workflow", "workers", "wall_ms", "speedup", "identical", "steals"});
  const std::vector<ShardRow> shard_rows = run_sharding_sweep(
      montage, montage_plan, levels[2], shard_runs, shard_table);
  std::printf("%s", shard_table.to_string().c_str());
  for (const ShardRow& r : shard_rows) {
    if (!r.bit_identical) {
      std::fprintf(stderr,
                   "FAIL: sharded sweep at %zu workers diverged from serial\n",
                   r.workers);
      return 1;
    }
  }

  if (!write_json(rows, cloud_rows, budget_rows, region_rows, shard_rows,
                  "montage/deco-static/medium", out)) {
    return 1;
  }
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
