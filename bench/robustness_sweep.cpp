// Robustness sweep: how do Deco's plans survive a cloud that actually
// fails?  Sweeps the failure-injection level (instance crashes, transient
// task failures, stragglers, boot failures) and compares three provisioning
// strategies on Montage and CyberShake:
//
//   deco-static     Deco's plan executed open-loop with fault-tolerant
//                   retries but no replanning,
//   deco-reactive   the same plan under wms::ReactiveEngine, which replans
//                   the residual DAG after failures / deadline risk,
//   autoscaling     the Autoscaling baseline executed open-loop.
//
// Reported per (workflow, scheduler, level): deadline-miss rate, average
// cost and its inflation over the failure-free run of the same scheduler,
// replans per run, and injected disruptions per run.  Results go to stdout
// and BENCH_robustness.json so the robustness trajectory is tracked across
// PRs.
//
// Usage: robustness_sweep [output.json]
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "obs/metrics.hpp"
#include "util/table.hpp"
#include "wms/reactive.hpp"

namespace {

using namespace deco;

struct Level {
  std::string name;
  sim::FailureModelOptions fm;
};

/// none/low/medium/high presets.  MTBFs of 6h / 2h / 0.5h bracket the
/// regime where a multi-hour workflow sees zero, a few, or many crashes.
std::vector<Level> failure_levels() {
  std::vector<Level> levels;
  levels.push_back({"none", {}});
  sim::FailureModelOptions low;
  low.crash_mtbf_s = 6 * 3600;
  low.task_failure_prob = 0.01;
  low.straggler_prob = 0.02;
  levels.push_back({"low", low});
  sim::FailureModelOptions medium;
  medium.crash_mtbf_s = 2 * 3600;
  medium.task_failure_prob = 0.03;
  medium.straggler_prob = 0.05;
  medium.boot_failure_prob = 0.01;
  levels.push_back({"medium", medium});
  sim::FailureModelOptions high;
  high.crash_mtbf_s = 1800;
  high.task_failure_prob = 0.08;
  high.straggler_prob = 0.10;
  high.boot_failure_prob = 0.03;
  levels.push_back({"high", high});
  return levels;
}

struct Row {
  std::string workflow;
  std::size_t tasks = 0;
  std::string scheduler;
  std::string level;
  int runs = 0;
  double deadline_s = 0;
  double miss_rate = 0;
  double avg_cost = 0;
  double cost_inflation = 1;  ///< avg_cost / same scheduler at level "none"
  double avg_makespan = 0;
  double avg_replans = 0;
  double avg_disruptions = 0;
};

constexpr int kRuns = 15;

/// Open-loop execution: the static plan rides out every failure through the
/// executor's retry machinery; nobody replans.
Row run_static(const workflow::Workflow& wf, const sim::Plan& plan,
               const std::string& scheduler, const Level& level,
               double deadline_s, std::uint64_t seed) {
  const sim::FailureModel model(level.fm);
  sim::ExecutorOptions options;
  options.failures = &model;
  util::Rng rng(seed);
  Row row;
  row.workflow = wf.name();
  row.tasks = wf.task_count();
  row.scheduler = scheduler;
  row.level = level.name;
  row.runs = kRuns;
  row.deadline_s = deadline_s;
  int missed = 0;
  for (int i = 0; i < kRuns; ++i) {
    const auto r = sim::simulate_execution(wf, plan, bench::env().catalog, rng,
                                           options);
    if (!r.finished || r.makespan > deadline_s) ++missed;
    row.avg_cost += r.total_cost;
    row.avg_makespan += r.makespan;
    row.avg_disruptions += static_cast<double>(r.failures.total_disruptions());
  }
  row.miss_rate = static_cast<double>(missed) / kRuns;
  row.avg_cost /= kRuns;
  row.avg_makespan /= kRuns;
  row.avg_disruptions /= kRuns;
  return row;
}

/// Closed-loop execution through the reactive engine (monitor + residual
/// replanning, graceful fallback on solver trouble).
Row run_reactive(const workflow::Workflow& wf, wms::Scheduler& primary,
                 const Level& level, const core::ProbDeadline& req,
                 std::uint64_t seed) {
  const sim::FailureModel model(level.fm);
  Row row;
  row.workflow = wf.name();
  row.tasks = wf.task_count();
  row.scheduler = "deco-reactive";
  row.level = level.name;
  row.runs = kRuns;
  row.deadline_s = req.deadline_s;
  int missed = 0;
  for (int i = 0; i < kRuns; ++i) {
    wms::ReactiveOptions options;
    options.executor.failures = &model;
    options.max_replans = 4;
    options.seed = seed + static_cast<std::uint64_t>(i) * 0x9E3779B9ULL;
    wms::ReactiveEngine engine(bench::env().catalog, bench::env().store,
                               primary, options);
    const wms::ReactiveReport report = engine.run(wf, req);
    if (!report.met_deadline) ++missed;
    row.avg_cost += report.total_cost;
    row.avg_makespan += report.makespan;
    row.avg_replans += static_cast<double>(report.replans);
    row.avg_disruptions +=
        static_cast<double>(report.failures.total_disruptions());
  }
  row.miss_rate = static_cast<double>(missed) / kRuns;
  row.avg_cost /= kRuns;
  row.avg_makespan /= kRuns;
  row.avg_replans /= kRuns;
  row.avg_disruptions /= kRuns;
  return row;
}

bool write_json(const std::vector<Row>& rows, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"robustness_sweep\",\n");
  std::fprintf(f,
               "  \"unit\": {\"miss_rate\": \"fraction of runs\", "
               "\"avg_cost\": \"USD\", \"cost_inflation\": "
               "\"vs failure-free same scheduler\"},\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"workflow\": \"%s\", \"tasks\": %zu, \"scheduler\": \"%s\", "
        "\"level\": \"%s\", \"runs\": %d, \"deadline_s\": %.1f, "
        "\"miss_rate\": %.3f, \"avg_cost\": %.4f, \"cost_inflation\": %.3f, "
        "\"avg_makespan\": %.1f, \"avg_replans\": %.2f, "
        "\"avg_disruptions\": %.2f}%s\n",
        r.workflow.c_str(), r.tasks, r.scheduler.c_str(), r.level.c_str(),
        r.runs, r.deadline_s, r.miss_rate, r.avg_cost, r.cost_inflation,
        r.avg_makespan, r.avg_replans, r.avg_disruptions,
        i + 1 < rows.size() ? "," : "");
  }
  // Aggregate simulator/reactive counters captured over the whole sweep
  // (sim.failures.*, wms.reactive.*), recorded alongside the summary rows.
  const std::string metrics =
      obs::to_json(obs::Registry::instance().snapshot());
  std::fprintf(f, "  ],\n  \"metrics\": %s\n}\n", metrics.c_str());
  return std::fclose(f) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deco;
  using bench::env;
  const std::string out = argc > 1 ? argv[1] : "BENCH_robustness.json";
  obs::Registry::instance().set_enabled(true);
  bench::print_header(
      "robustness_sweep",
      "Deadline-miss rate, cost inflation and replans/run under injected\n"
      "failures: Deco static vs Deco reactive vs Autoscaling, 15 runs per\n"
      "point, failure levels none/low/medium/high.");

  // Reduced search budget: the sweep replans repeatedly, so each solve is
  // bounded well below the default 2048-state budget.
  core::SchedulingOptions sched;
  sched.search.max_states = 192;

  core::Deco engine(env().catalog, env().store);
  wms::DecoScheduler deco_scheduler(engine, sched);

  const auto levels = failure_levels();
  std::vector<Row> rows;
  util::Table table({"workflow", "scheduler", "level", "miss", "cost",
                     "inflation", "replans", "disrupt"});

  for (const int which : {0, 1}) {
    util::Rng wf_rng(7);
    const workflow::Workflow wf = which == 0
                                      ? workflow::make_montage(1, wf_rng)
                                      : workflow::make_cybershake(50, wf_rng);
    const auto bounds = bench::deadline_bounds(wf);
    const double deadline = bounds.medium();
    const core::ProbDeadline req{0.9, deadline};

    const sim::Plan deco_plan = engine.schedule(wf, req, sched).plan;
    core::TaskTimeEstimator estimator(env().catalog, env().store);
    const sim::Plan as_plan =
        baselines::Autoscaling(wf, estimator).solve(deadline).plan;

    // Failure-free cost per scheduler, the denominator of cost_inflation.
    double base_cost[3] = {0, 0, 0};
    for (const Level& level : levels) {
      Row per[3];
      per[0] = run_static(wf, deco_plan, "deco-static", level, deadline,
                          1000 + static_cast<std::uint64_t>(which));
      per[1] = run_reactive(wf, deco_scheduler, level, req,
                            2000 + static_cast<std::uint64_t>(which));
      per[2] = run_static(wf, as_plan, "autoscaling", level, deadline,
                          3000 + static_cast<std::uint64_t>(which));
      for (int s = 0; s < 3; ++s) {
        if (level.name == "none") base_cost[s] = per[s].avg_cost;
        per[s].cost_inflation =
            base_cost[s] > 0 ? per[s].avg_cost / base_cost[s] : 1.0;
        table.add_row({per[s].workflow, per[s].scheduler, per[s].level,
                       util::Table::num(per[s].miss_rate * 100, 0) + "%",
                       util::Table::num(per[s].avg_cost, 2),
                       util::Table::num(per[s].cost_inflation, 2),
                       util::Table::num(per[s].avg_replans, 1),
                       util::Table::num(per[s].avg_disruptions, 1)});
        rows.push_back(per[s]);
      }
    }
  }

  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nShape check: miss rate grows with the failure level for every\n"
      "scheduler.  Where the deadline leaves slack (Montage), deco-reactive\n"
      "converts static misses into replans and extra spend; where the\n"
      "deadline is tight even failure-free (CyberShake), replanning buys\n"
      "little and mostly shows up as cost inflation.\n");
  if (!write_json(rows, out)) return 1;
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
