// Figure 10: follow-the-cost — total monetary cost of Deco vs the Heuristic
// baseline: (a) across workflow sizes (Montage-1/4/8) and (b) across the
// heuristic's runtime-adjustment threshold (10%..90%), Montage-8.
//
// Paper shape: Deco is cheapest for every size, with a growing gap on larger
// workflows; Deco stays below the heuristic at every threshold setting.
#include "bench/bench_common.hpp"

#include <functional>
#include <map>

#include "baselines/migration_heuristic.hpp"

#include "workflow/analysis.hpp"

namespace {

// Workflows join the optimization *mid-run* (the paper migrates partially
// executed workflows): a varying fraction of each DAG is already finished,
// so migrating means paying for the frontier's intermediate data, and each
// workflow runs ahead of or behind its estimate — the signals that separate
// Deco's per-period re-optimization from the price-only heuristic.
std::vector<deco::core::MigrationWorkflowState> make_states(
    const std::vector<deco::workflow::Workflow>& workflows,
    deco::core::TaskTimeEstimator& estimator) {
  std::vector<deco::core::MigrationWorkflowState> states;
  for (std::size_t i = 0; i < workflows.size(); ++i) {
    deco::core::MigrationWorkflowState s;
    s.wf = &workflows[i];
    s.finished.assign(workflows[i].task_count(), false);
    s.region = i % 2 == 0 ? 1 : 0;  // half start in the pricier region
    s.vm_type = 1;
    s.deadline_s = 72 * 3600;
    // Progress: 30-50% of the levels are done.
    const auto levels = deco::workflow::levels(workflows[i]);
    int max_level = 0;
    for (int l : levels) max_level = std::max(max_level, l);
    const double frac = 0.3 + 0.1 * static_cast<double>(i % 3);
    std::map<int, double> level_time;
    for (deco::workflow::TaskId t = 0; t < workflows[i].task_count(); ++t) {
      if (levels[t] < frac * (max_level + 1)) {
        s.finished[t] = true;
        auto& slot = level_time[levels[t]];
        slot = std::max(slot,
                        estimator.mean_time(workflows[i], t, s.vm_type));
      }
    }
    double expected = 0;
    for (const auto& [level, time] : level_time) expected += time;
    // Observed progress deviates from the estimate per workflow (the paper's
    // runtime dynamics): some run late, some early.
    const double lateness = 0.7 + 0.3 * static_cast<double>(i % 4);
    s.elapsed_s = expected * lateness;
    states.push_back(std::move(s));
  }
  return states;
}

}  // namespace

int main() {
  using namespace deco;
  using bench::env;
  bench::print_header(
      "Figure 10",
      "Follow-the-cost: total monetary cost, Deco vs Heuristic\n"
      "(costs normalized to Heuristic)");

  core::TaskTimeEstimator estimator(env().catalog, env().store);
  core::MigrationOptimizer optimizer(env().catalog, estimator);
  const core::MigrationPolicy deco_policy =
      [&](const std::vector<core::MigrationWorkflowState>& states) {
        return optimizer.optimize(states).targets;
      };

  // (a) workflow sizes.
  std::printf("(a) by workflow size (8 workflows each):\n");
  util::Table by_size({"workflow", "Heuristic $", "Deco $", "normalized",
                       "Deco moves"});
  for (const int degree : {1, 4, 8}) {
    util::Rng gen_rng(40 + static_cast<std::uint64_t>(degree));
    std::vector<workflow::Workflow> workflows;
    for (int i = 0; i < 8; ++i) {
      workflows.push_back(workflow::make_montage(degree, gen_rng));
    }
    util::Rng r1(51);
    const auto deco_report = core::run_followcost_scenario(
        make_states(workflows, estimator), env().catalog, deco_policy, r1);
    baselines::MigrationHeuristic heuristic(env().catalog, estimator);
    util::Rng r2(51);
    const auto heuristic_report = core::run_followcost_scenario(
        make_states(workflows, estimator), env().catalog, std::ref(heuristic), r2);
    by_size.add_row(
        {"Montage-" + std::to_string(degree),
         util::Table::num(heuristic_report.total_cost, 3),
         util::Table::num(deco_report.total_cost, 3),
         util::Table::num(deco_report.total_cost / heuristic_report.total_cost,
                          3),
         std::to_string(deco_report.migrations)});
  }
  std::printf("%s\n", by_size.to_string().c_str());

  // (b) threshold sweep on Montage-8.
  std::printf("(b) by heuristic threshold (Montage-8, 6 workflows):\n");
  util::Rng gen_rng(48);
  std::vector<workflow::Workflow> workflows;
  for (int i = 0; i < 6; ++i) {
    workflows.push_back(workflow::make_montage(8, gen_rng));
  }
  util::Rng r1(53);
  const auto deco_report = core::run_followcost_scenario(
      make_states(workflows, estimator), env().catalog, deco_policy, r1);
  util::Table by_threshold({"threshold", "Heuristic $", "Deco $",
                            "normalized"});
  for (const double threshold : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    baselines::MigrationHeuristicOptions opt;
    opt.threshold = threshold;
    baselines::MigrationHeuristic heuristic(env().catalog, estimator, opt);
    util::Rng r2(53);
    const auto heuristic_report = core::run_followcost_scenario(
        make_states(workflows, estimator), env().catalog, std::ref(heuristic), r2);
    by_threshold.add_row(
        {util::Table::num(threshold * 100, 0) + "%",
         util::Table::num(heuristic_report.total_cost, 3),
         util::Table::num(deco_report.total_cost, 3),
         util::Table::num(deco_report.total_cost / heuristic_report.total_cost,
                          3)});
  }
  std::printf("%s", by_threshold.to_string().c_str());
  std::printf("\nShape check: normalized <= 1 everywhere; the gap grows with "
              "workflow size.\n");
  return 0;
}
