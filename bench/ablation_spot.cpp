// Ablation (pricing-model extension): on-demand vs spot policies.
//
// Compares three policies on a deadline-constrained Montage run:
//   * on-demand everywhere (the paper's setting);
//   * spot everywhere (cheapest, but revocations endanger the deadline);
//   * slack-spot (Deco's extension: spot only where the schedule can absorb
//     lost attempts).
// Plus a bid-fraction sweep showing the availability/price trade-off.
#include "bench/bench_common.hpp"

#include "core/spot_planner.hpp"
#include "sim/spot_executor.hpp"

int main() {
  using namespace deco;
  using bench::env;
  bench::print_header(
      "Ablation: spot pricing",
      "On-demand vs spot policies on Montage-2 (medium deadline, 96%\n"
      "requirement, 30 runs per policy; spot bid = 60% of on-demand)");

  util::Rng rng(77);
  const workflow::Workflow wf = workflow::make_montage(2, rng);
  const auto bounds = bench::deadline_bounds(wf);
  // Spot pays off when the schedule has slack; use a loose-ish deadline
  // (spot waits for price spikes to decay, which costs wall-clock time).
  const core::ProbDeadline req{0.96, 3.0 * bounds.medium()};

  core::Deco engine(env().catalog, env().store);
  const auto solved = engine.schedule(wf, req);
  core::TaskTimeEstimator estimator(env().catalog, env().store);

  // Spot traces: one week at one-minute steps per type.
  std::vector<cloud::SpotPriceTrace> traces;
  util::Rng spot_rng(78);
  for (const auto& type : env().catalog.types()) {
    traces.push_back(cloud::SpotPriceTrace::simulate(
        type.price_per_hour, cloud::SpotModel{}, 7 * 24 * 60, spot_rng));
  }
  std::printf("Spot market quotes (bid = 60%% of on-demand):\n");
  for (std::size_t t = 0; t < traces.size(); ++t) {
    const auto q = cloud::quote(traces[t],
                                0.6 * env().catalog.type(t).price_per_hour);
    std::printf("  %-10s mean spot $%.4f/h (%.0f%% of on-demand), "
                "hourly revocation risk %.0f%%\n",
                env().catalog.type(static_cast<cloud::TypeId>(t)).name.c_str(),
                q.mean_price,
                100 * q.mean_price /
                    env().catalog.type(static_cast<cloud::TypeId>(t)).price_per_hour,
                100 * q.hourly_revocation_prob);
  }
  std::printf("\n");

  struct PolicyRow {
    const char* name;
    sim::SpotPolicy policy;
  };
  sim::SpotPolicy all_spot;
  all_spot.use_spot.assign(wf.task_count(), true);
  std::vector<PolicyRow> policies{
      {"on-demand", sim::SpotPolicy{}},
      {"all-spot", all_spot},
      {"slack-spot",
       core::plan_spot_policy(wf, solved.plan, estimator, req.deadline_s)},
  };

  util::Table table({"policy", "spot tasks", "avg cost $", "avg makespan s",
                     "revocations", "met deadline"});
  for (const auto& row : policies) {
    std::size_t spot_tasks = 0;
    for (bool s : row.policy.use_spot) spot_tasks += s;
    std::vector<double> costs;
    std::vector<double> makespans;
    std::size_t revocations = 0;
    int met = 0;
    util::Rng run_rng(79);
    const int runs = 30;
    for (int i = 0; i < runs; ++i) {
      // Each run sees its own week of market history.
      std::vector<cloud::SpotPriceTrace> run_traces;
      util::Rng trace_rng(1000 + static_cast<std::uint64_t>(i));
      for (const auto& type : env().catalog.types()) {
        run_traces.push_back(cloud::SpotPriceTrace::simulate(
            type.price_per_hour, cloud::SpotModel{}, 24 * 60, trace_rng));
      }
      const auto r = sim::simulate_spot_execution(
          wf, solved.plan, row.policy, run_traces, env().catalog, run_rng);
      costs.push_back(r.base.total_cost);
      makespans.push_back(r.base.makespan);
      revocations += r.revocations;
      met += r.base.makespan <= req.deadline_s;
    }
    table.add_row({row.name, std::to_string(spot_tasks),
                   util::Table::num(util::mean(costs), 4),
                   util::Table::num(util::mean(makespans), 0),
                   std::to_string(revocations),
                   util::Table::num(100.0 * met / runs, 0) + "%"});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Bid-fraction sweep with the slack-spot policy.
  std::printf("bid-fraction sweep (slack-spot policy):\n");
  util::Table sweep({"bid fraction", "avg cost $", "revocations",
                     "met deadline"});
  for (const double bid : {0.35, 0.5, 0.6, 0.8, 1.0}) {
    core::SpotPlannerOptions popt;
    popt.bid_fraction = bid;
    auto policy =
        core::plan_spot_policy(wf, solved.plan, estimator, req.deadline_s, popt);
    std::vector<double> costs;
    std::size_t revocations = 0;
    int met = 0;
    util::Rng run_rng(80);
    const int runs = 20;
    for (int i = 0; i < runs; ++i) {
      std::vector<cloud::SpotPriceTrace> run_traces;
      util::Rng trace_rng(2000 + static_cast<std::uint64_t>(i));
      for (const auto& type : env().catalog.types()) {
        run_traces.push_back(cloud::SpotPriceTrace::simulate(
            type.price_per_hour, cloud::SpotModel{}, 24 * 60, trace_rng));
      }
      const auto r = sim::simulate_spot_execution(
          wf, solved.plan, policy, run_traces, env().catalog, run_rng);
      costs.push_back(r.base.total_cost);
      revocations += r.revocations;
      met += r.base.makespan <= req.deadline_s;
    }
    sweep.add_row({util::Table::num(bid, 2),
                   util::Table::num(util::mean(costs), 4),
                   std::to_string(revocations),
                   util::Table::num(100.0 * met / runs, 0) + "%"});
  }
  std::printf("%s", sweep.to_string().c_str());
  std::printf("\nShape check: all-spot is cheapest but risks the deadline;\n"
              "slack-spot keeps the deadline while cutting the on-demand "
              "cost.\n");
  return 0;
}
