// Shared setup for the experiment-reproduction benches: the calibrated EC2
// cloud, deadline derivation per Section 6.1, and run helpers.
//
// Every bench regenerates one table or figure of the paper's evaluation
// section and prints the same rows/series the paper reports (normalized the
// same way).  Absolute numbers come from the simulator, not the authors'
// testbed; the *shape* (who wins, by what factor, where crossovers sit) is
// the reproduction target — see EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "cloud/calibration.hpp"
#include "core/deco.hpp"
#include "sim/executor.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workflow/generators.hpp"

namespace deco::bench {

struct Env {
  cloud::Catalog catalog;
  cloud::MetadataStore store;
};

inline const Env& env() {
  static const Env e = [] {
    Env out;
    out.catalog = cloud::make_ec2_catalog();
    out.store = core::make_store_from_catalog(out.catalog, "ec2", 6000, 24, 7);
    return out;
  }();
  return e;
}

/// D_min / D_max per Section 6.1: expected makespans with every task on
/// m1.xlarge / m1.small.  The paper uses tight = 1.5 Dmin and loose = 0.75
/// Dmax against an ~8x ECU speed range; single-threaded tasks cap our range
/// near 2x, so the coefficients are adapted (1.25 / 0.95) to keep the three
/// settings ordered and the tight one genuinely near the feasible frontier.
struct DeadlineBounds {
  double d_min = 0;
  double d_max = 0;
  double tight() const { return 1.25 * d_min; }
  double medium() const { return 0.5 * (d_min + d_max); }
  double loose() const { return 0.95 * d_max; }
};

inline DeadlineBounds deadline_bounds(const workflow::Workflow& wf) {
  core::TaskTimeEstimator estimator(env().catalog, env().store);
  vgpu::VirtualGpuBackend backend;
  core::PlanEvaluator evaluator(wf, estimator, backend);
  DeadlineBounds bounds;
  bounds.d_min =
      evaluator
          .evaluate(sim::Plan::uniform(wf.task_count(),
                                       static_cast<cloud::TypeId>(
                                           env().catalog.type_count() - 1)),
                    {0.5, 1e12})
          .mean_makespan;
  bounds.d_max =
      evaluator
          .evaluate(sim::Plan::uniform(wf.task_count(), 0), {0.5, 1e12})
          .mean_makespan;
  return bounds;
}

struct RunStats {
  double avg_cost = 0;
  double avg_makespan = 0;
  double met_fraction = 0;
  std::vector<double> makespans;
  std::vector<double> costs;
};

/// Executes `plan` on the simulator `runs` times.
inline RunStats run_plan(const workflow::Workflow& wf, const sim::Plan& plan,
                         double deadline_s, int runs, std::uint64_t seed) {
  RunStats stats;
  util::Rng rng(seed);
  int met = 0;
  for (int i = 0; i < runs; ++i) {
    const auto r = sim::simulate_execution(wf, plan, env().catalog, rng);
    stats.makespans.push_back(r.makespan);
    stats.costs.push_back(r.total_cost);
    if (r.makespan <= deadline_s) ++met;
  }
  stats.avg_cost = util::mean(stats.costs);
  stats.avg_makespan = util::mean(stats.makespans);
  stats.met_fraction = runs > 0 ? static_cast<double>(met) / runs : 0;
  return stats;
}

inline void print_header(const char* id, const char* caption) {
  std::printf("=== %s ===\n%s\n\n", id, caption);
}

}  // namespace deco::bench
