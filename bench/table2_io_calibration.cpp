// Table 2: parameters of the I/O performance distributions fitted from the
// calibration pass — sequential I/O ~ Gamma(k, theta), random I/O ~
// Normal(mu, sigma) per instance type.
//
// The calibration only sees samples drawn from the ground-truth model, so
// the fitted parameters should land on the paper's published values.
#include "bench/bench_common.hpp"

int main() {
  using namespace deco;
  using bench::env;
  bench::print_header(
      "Table 2",
      "Parameters of I/O performance distributions on (simulated) EC2\n"
      "(10000 samples per setting, method-of-moments fits)");

  cloud::MetadataStore store;
  cloud::CalibrationOptions options;
  options.samples_per_setting = 10000;
  util::Rng rng(22);
  const auto report = cloud::calibrate(env().catalog, store, options, rng);

  struct PaperRow {
    const char* type;
    double k, theta, mu, sigma;
  };
  // The published Table 2.
  const PaperRow paper[] = {
      {"m1.small", 129.3, 0.79, 150.3, 50.0},
      {"m1.medium", 127.1, 0.80, 128.9, 8.4},
      {"m1.large", 376.6, 0.28, 172.9, 34.8},
      {"m1.xlarge", 408.1, 0.26, 1034.0, 146.4},
  };

  util::Table table({"instance type", "seq I/O fitted", "seq I/O paper",
                     "rand I/O fitted", "rand I/O paper"});
  for (const auto& row : paper) {
    const auto* seq =
        report.find(cloud::MetadataStore::seq_io_key("ec2", row.type));
    const auto* rnd =
        report.find(cloud::MetadataStore::rand_io_key("ec2", row.type));
    if (seq == nullptr || rnd == nullptr) continue;
    table.add_row(
        {row.type,
         "Gamma(" + util::Table::num(seq->fitted_gamma.k, 1) + ", " +
             util::Table::num(seq->fitted_gamma.theta, 2) + ")",
         "Gamma(" + util::Table::num(row.k, 1) + ", " +
             util::Table::num(row.theta, 2) + ")",
         "Normal(" + util::Table::num(rnd->fitted_normal.mu, 1) + ", " +
             util::Table::num(rnd->fitted_normal.sigma, 1) + ")",
         "Normal(" + util::Table::num(row.mu, 1) + ", " +
             util::Table::num(row.sigma, 1) + ")"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nNote: the rare low tail of wide Normals (m1.small sigma=50) is\n"
      "floored at 45%% of the mean per the Fig. 6 trace shape, so its fitted\n"
      "sigma comes out slightly below the published value.\n");
  return 0;
}
