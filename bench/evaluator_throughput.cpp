// Evaluator-throughput tracker: samples/sec and states/sec of the Monte
// Carlo plan evaluator (the hot path of the declarative search, Section 5.3).
//
// For Montage (~100 tasks) and CyberShake (100 tasks) the bench evaluates a
// wave of mostly-overlapping plans — the access pattern BFS/A* search
// produces — at several Monte Carlo iteration counts on both backends and
// both cost models.  On top of the full-MC rows, the bench measures the
// estimator hierarchy (analytic screen and the screened auto pipeline) at
// the acceptance point, and records a "screening" summary block alongside
// the rows.  Results go to stdout and to BENCH_evaluator.json so the perf
// trajectory is tracked across PRs.
//
//   states/sec  = evaluated plans per second (one vgpu block per plan)
//   samples/sec = task-samples per second (plans x MC lanes x tasks)
//
// Usage: evaluator_throughput [output.json] [--smoke]
//   --smoke shrinks iteration counts and repetitions to a CI-sized sanity
//   run (seconds, not minutes) that still exercises every code path.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/estimator.hpp"
#include "core/evaluator.hpp"
#include "bench/bench_common.hpp"
#include "obs/metrics.hpp"
#include "workflow/generators.hpp"

namespace {

using namespace deco;

struct Row {
  std::string workflow;
  std::size_t tasks = 0;
  std::string backend;
  std::size_t workers = 0;  ///< vgpu pool workers; 0 for the serial backend
  std::string cost_model;
  std::string estimator = "mc";
  std::size_t mc_iterations = 0;
  std::size_t plans = 0;
  double seconds = 0;
  double states_per_sec = 0;
  double samples_per_sec = 0;
  core::ScreenStats screen;  ///< zeroed for the full-MC rows
};

/// A search-like wave: `count` plans differing from a base placement by a few
/// single-task mutations (the overlap the staging cache exploits), with some
/// plans carrying co-scheduling groups (exercising billed-hours grouping).
std::vector<sim::Plan> make_wave(const workflow::Workflow& wf,
                                 std::size_t count, std::size_t types,
                                 util::Rng& rng) {
  std::vector<sim::Plan> plans;
  plans.reserve(count);
  sim::Plan base = sim::Plan::uniform(wf.task_count(), 1);
  for (std::size_t t = 0; t < wf.task_count(); t += 7) {
    base[t].group = static_cast<std::int32_t>(t % 5);
  }
  for (std::size_t i = 0; i < count; ++i) {
    sim::Plan p = base;
    // One to three single-placement mutations per wave member.
    const std::size_t mutations = 1 + rng.below(3);
    for (std::size_t m = 0; m < mutations; ++m) {
      const std::size_t t = rng.below(wf.task_count());
      p[t].vm_type = static_cast<cloud::TypeId>(rng.below(types));
    }
    plans.push_back(std::move(p));
  }
  return plans;
}

Row run_case(const workflow::Workflow& wf, const std::string& backend_name,
             std::size_t workers, core::CostModel cost_model,
             std::size_t iters, std::span<const sim::Plan> plans,
             core::EstimatorMode mode, double deadline, double budget_s) {
  core::TaskTimeEstimator estimator(bench::env().catalog, bench::env().store);
  auto backend = vgpu::make_backend(backend_name, workers);
  core::EvalOptions opt;
  opt.mc_iterations = iters;
  opt.cost_model = cost_model;
  opt.estimator = mode;
  core::PlanEvaluator evaluator(wf, estimator, *backend, opt);
  const core::ProbDeadline req{0.9, deadline};
  const bool screened = mode != core::EstimatorMode::kMc;
  auto wave_once = [&] {
    if (screened) {
      (void)evaluator.evaluate_batch_screened(plans, req);
    } else {
      (void)evaluator.evaluate_batch(plans, req);
    }
  };

  // Warm the estimator / staging caches, then time steady-state repetitions:
  // search loops re-evaluate heavily overlapping waves, so steady state is
  // the representative regime.  Each repetition is timed individually and
  // the fastest is reported — the standard least-interference estimate on a
  // shared/noisy host, where a mean would fold scheduler preemption into
  // the kernel's throughput.
  wave_once();
  double best = 1e300;
  double elapsed = 0;
  std::size_t reps = 0;
  do {
    const auto t0 = std::chrono::steady_clock::now();
    wave_once();
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    best = std::min(best, dt);
    elapsed += dt;
    ++reps;
  } while (elapsed < budget_s && reps < 50);

  Row row;
  row.workflow = wf.name();
  row.tasks = wf.task_count();
  row.backend = backend_name;
  row.workers = backend_name == "serial" ? 0 : workers;
  row.cost_model =
      cost_model == core::CostModel::kBilledHours ? "billed_hours" : "prorated";
  row.estimator = core::to_string(mode);
  row.mc_iterations = iters;
  row.plans = plans.size();
  row.seconds = best;
  row.screen = evaluator.screen_stats();
  const double states = static_cast<double>(plans.size());
  row.states_per_sec = states / row.seconds;
  row.samples_per_sec = states * static_cast<double>(iters) *
                        static_cast<double>(wf.task_count()) / row.seconds;
  return row;
}

bool write_json(const std::vector<Row>& rows, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"evaluator_throughput\",\n");
  std::fprintf(f, "  \"unit\": {\"states_per_sec\": \"plans/s\", "
                  "\"samples_per_sec\": \"task-samples/s\"},\n");
  std::fprintf(f, "  \"hw_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"workflow\": \"%s\", \"tasks\": %zu, \"backend\": "
                 "\"%s\", \"workers\": %zu, \"cost_model\": \"%s\", "
                 "\"estimator\": \"%s\", \"mc_iterations\": %zu, \"plans\": "
                 "%zu, \"seconds\": %.6f, \"states_per_sec\": %.1f, "
                 "\"samples_per_sec\": %.1f}%s\n",
                 r.workflow.c_str(), r.tasks, r.backend.c_str(), r.workers,
                 r.cost_model.c_str(), r.estimator.c_str(), r.mc_iterations,
                 r.plans, r.seconds, r.states_per_sec, r.samples_per_sec,
                 i + 1 < rows.size() ? "," : "");
  }
  // Estimator-hierarchy summary: what the screen decided across every
  // screened row, and the screened-vs-full-MC throughput ratio per workflow
  // at the acceptance point (billed hours, 1000 iterations).
  core::ScreenStats total;
  for (const Row& r : rows) {
    total.screened += r.screen.screened;
    total.accepted += r.screen.accepted;
    total.rejected += r.screen.rejected;
    total.escalated += r.screen.escalated;
    total.qmc_early_stops += r.screen.qmc_early_stops;
    total.qmc_iterations_used += r.screen.qmc_iterations_used;
    total.qmc_iterations_saved += r.screen.qmc_iterations_saved;
  }
  std::fprintf(f,
               "  ],\n  \"screening\": {\"screened\": %zu, \"accepted\": %zu, "
               "\"rejected\": %zu, \"escalated\": %zu, \"qmc_early_stops\": "
               "%zu, \"qmc_iterations_used\": %zu, \"qmc_iterations_saved\": "
               "%zu, \"speedup_vs_mc\": [",
               total.screened, total.accepted, total.rejected, total.escalated,
               total.qmc_early_stops, total.qmc_iterations_used,
               total.qmc_iterations_saved);
  bool first = true;
  for (const Row& r : rows) {
    if (r.estimator != "auto") continue;
    // Find the matching full-MC row (same workflow/backend/workers/model).
    for (const Row& m : rows) {
      if (m.estimator == "mc" && m.workflow == r.workflow &&
          m.backend == r.backend && m.workers == r.workers &&
          m.cost_model == r.cost_model &&
          m.mc_iterations == r.mc_iterations) {
        std::fprintf(f, "%s{\"workflow\": \"%s\", \"speedup\": %.2f}",
                     first ? "" : ", ", r.workflow.c_str(),
                     r.states_per_sec / m.states_per_sec);
        first = false;
        break;
      }
    }
  }
  std::fprintf(f, "]},\n");
  // Aggregate evaluator counters/timers captured over the whole sweep, so
  // BENCH files record cache behaviour alongside the throughput rows.
  const std::string metrics =
      obs::to_json(obs::Registry::instance().snapshot());
  std::fprintf(f, "  \"metrics\": %s\n}\n", metrics.c_str());
  return std::fclose(f) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deco;
  std::string out = "BENCH_evaluator.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out = argv[i];
    }
  }
  obs::Registry::instance().set_enabled(true);
  bench::print_header("evaluator_throughput",
                      "Monte Carlo evaluator throughput (states/sec and "
                      "task-samples/sec) across workflows, backends, cost "
                      "models, MC iteration counts and estimator tiers.");

  util::Rng rng(2015);
  // Montage sized to ~100 tasks (width 28 -> 102 tasks with this generator).
  std::vector<workflow::Workflow> workflows;
  workflows.push_back(workflow::make_montage_by_width(smoke ? 8 : 28, rng));
  workflows.push_back(workflow::make_cybershake(smoke ? 30 : 100, rng));

  const std::size_t kPlansPerWave = smoke ? 8 : 32;
  const double kBudgetS = smoke ? 0.02 : 0.6;
  const std::size_t types = bench::env().catalog.type_count();

  // Worker sweep at the paper's default iteration count: 1, 2, 4 and the
  // hardware thread count, deduplicated (0 workers = the serial backend).
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<std::size_t> sweep{1, 2, 4};
  if (std::find(sweep.begin(), sweep.end(), hw) == sweep.end()) {
    sweep.push_back(hw);
  }
  if (smoke) sweep = {2};
  const std::vector<std::size_t> iteration_sweep =
      smoke ? std::vector<std::size_t>{64}
            : std::vector<std::size_t>{128, 1000, 4096};
  const std::size_t acceptance_iters = smoke ? 64 : 1000;

  std::vector<Row> rows;
  auto emit = [&rows](const Row& row) {
    std::printf("%-12s %6zu %-7s %7zu %-13s %-8s %6zu %10.0f %14.0f\n",
                row.workflow.c_str(), row.tasks, row.backend.c_str(),
                row.workers, row.cost_model.c_str(), row.estimator.c_str(),
                row.mc_iterations, row.states_per_sec, row.samples_per_sec);
    rows.push_back(row);
  };
  std::printf("%-12s %6s %-7s %7s %-13s %-8s %6s %10s %14s\n", "workflow",
              "tasks", "backend", "workers", "cost_model", "estimator",
              "iters", "states/s", "samples/s");
  for (const auto& wf : workflows) {
    util::Rng wave_rng(7);
    const auto wave = make_wave(wf, kPlansPerWave, types, wave_rng);
    // A deadline in the feasibility transition region, so the analytic
    // screen sees all three verdicts instead of trivially accepting.
    const double deadline = bench::deadline_bounds(wf).medium();
    for (const std::size_t iters : iteration_sweep) {
      for (const auto model :
           {core::CostModel::kBilledHours, core::CostModel::kProrated}) {
        // Track prorated at the paper's default iteration count only; the
        // billed-hours model is the acceptance metric at every point.
        if (model == core::CostModel::kProrated && iters != acceptance_iters) {
          continue;
        }
        emit(run_case(wf, "serial", 0, model, iters, wave,
                      core::EstimatorMode::kMc, deadline, kBudgetS));
        if (iters == acceptance_iters &&
            model == core::CostModel::kBilledHours) {
          // The acceptance point gets the full worker sweep plus the
          // estimator-hierarchy rows at the largest worker count.
          for (const std::size_t workers : sweep) {
            emit(run_case(wf, "vgpu", workers, model, iters, wave,
                          core::EstimatorMode::kMc, deadline, kBudgetS));
          }
          const std::size_t top = sweep.back();
          emit(run_case(wf, "vgpu", top, model, iters, wave,
                        core::EstimatorMode::kAnalytic, deadline, kBudgetS));
          emit(run_case(wf, "vgpu", top, model, iters, wave,
                        core::EstimatorMode::kAuto, deadline, kBudgetS));
        } else {
          emit(run_case(wf, "vgpu", smoke ? sweep.back() : hw, model, iters,
                        wave, core::EstimatorMode::kMc, deadline, kBudgetS));
        }
      }
    }
  }
  if (!write_json(rows, out)) return 1;
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
