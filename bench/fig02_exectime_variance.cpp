// Figure 2: execution-time variance of Montage-1/4/8 on the (simulated)
// cloud, 100 runs each, under Deco-optimized instance configurations.
//
// Paper shape: normalized execution time varies significantly across runs
// (quantile boxes visibly spread), driven by disk and network interference.
#include "bench/bench_common.hpp"

int main() {
  using namespace deco;
  using bench::env;
  bench::print_header(
      "Figure 2",
      "Execution time quantiles of Montage workflows (100 runs each, Deco\n"
      "plans; times normalized to each workflow's median)");

  core::Deco engine(env().catalog, env().store);
  util::Table table({"workflow", "tasks", "min", "q25", "median", "q75",
                     "max", "(max-min)/max"});

  for (const int degree : {1, 4, 8}) {
    util::Rng rng(7 + static_cast<std::uint64_t>(degree));
    const workflow::Workflow wf = workflow::make_montage(degree, rng);
    const auto bounds = bench::deadline_bounds(wf);
    const core::ProbDeadline req{0.96, bounds.medium()};
    const auto solved = engine.schedule(wf, req);
    const auto stats = bench::run_plan(wf, solved.plan, req.deadline_s, 100,
                                       50 + static_cast<std::uint64_t>(degree));
    const auto summary = util::five_number_summary(stats.makespans);
    const double median = summary.median > 0 ? summary.median : 1;
    table.add_row({wf.name(), std::to_string(wf.task_count()),
                   util::Table::num(summary.min / median, 3),
                   util::Table::num(summary.q25 / median, 3), "1.000",
                   util::Table::num(summary.q75 / median, 3),
                   util::Table::num(summary.max / median, 3),
                   util::Table::num((summary.max - summary.min) / summary.max, 3)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
