// Figure 11: sensitivity to the deadline parameter on Montage-8 —
// tight (1.5 Dmin), medium ((Dmin+Dmax)/2), loose (0.75 Dmax).
//
// Paper shape: Deco stays cheaper than Autoscaling under every setting; as
// the deadline loosens, monetary cost decreases and execution time grows
// (cheaper instances get selected).
#include "bench/bench_common.hpp"

#include "baselines/autoscaling.hpp"

int main() {
  using namespace deco;
  using bench::env;
  bench::print_header(
      "Figure 11",
      "Deadline sensitivity on Montage-8 (96% requirement, 30 runs per\n"
      "point; normalized to Autoscaling under the tight deadline)");

  util::Rng rng(15);
  const workflow::Workflow wf = workflow::make_montage(8, rng);
  const auto bounds = bench::deadline_bounds(wf);
  std::printf("Montage-8: %zu tasks; Dmin %.0f s, Dmax %.0f s\n\n",
              wf.task_count(), bounds.d_min, bounds.d_max);

  core::Deco engine(env().catalog, env().store);
  core::TaskTimeEstimator estimator(env().catalog, env().store);
  baselines::Autoscaling autoscaling(wf, estimator);

  struct Setting {
    const char* name;
    double deadline;
  };
  const Setting settings[] = {{"tight", bounds.tight()},
                              {"medium", bounds.medium()},
                              {"loose", bounds.loose()}};

  double base_cost = 0;
  double base_time = 0;
  util::Table table({"deadline", "algorithm", "norm avg cost",
                     "norm avg time", "met"});
  for (const Setting& setting : settings) {
    const core::ProbDeadline req{0.96, setting.deadline};
    const auto deco = engine.schedule(wf, req);
    const auto as_plan = autoscaling.solve(setting.deadline);
    const auto deco_stats =
        bench::run_plan(wf, deco.plan, setting.deadline, 30, 31);
    const auto as_stats =
        bench::run_plan(wf, as_plan.plan, setting.deadline, 30, 37);
    if (base_cost == 0) {
      base_cost = as_stats.avg_cost;  // normalize to Autoscaling@tight
      base_time = as_stats.avg_makespan;
    }
    table.add_row({setting.name, "Autoscaling",
                   util::Table::num(as_stats.avg_cost / base_cost, 3),
                   util::Table::num(as_stats.avg_makespan / base_time, 3),
                   util::Table::num(as_stats.met_fraction * 100, 0) + "%"});
    table.add_row({setting.name, "Deco",
                   util::Table::num(deco_stats.avg_cost / base_cost, 3),
                   util::Table::num(deco_stats.avg_makespan / base_time, 3),
                   util::Table::num(deco_stats.met_fraction * 100, 0) + "%"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nShape check: Deco <= Autoscaling per setting; cost falls\n"
              "and time rises as the deadline loosens.\n");
  return 0;
}
