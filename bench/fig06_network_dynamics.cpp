// Figure 6: network performance dynamics of m1.medium instances.
//   (a) relative variance over a measurement trace (paper: up to ~50%);
//   (b) the measurement histogram passes a Normal null-hypothesis check.
#include "bench/bench_common.hpp"

int main() {
  using namespace deco;
  using bench::env;
  bench::print_header(
      "Figure 6",
      "Network performance dynamics of m1.medium (10000 samples, one per\n"
      "minute over 7 simulated days)");

  cloud::MetadataStore store;
  cloud::CalibrationOptions options;
  options.samples_per_setting = 10000;
  util::Rng rng(66);
  const auto report = cloud::calibrate(env().catalog, store, options, rng);

  const auto* rec = report.find(
      cloud::MetadataStore::net_key("ec2", "m1.medium", "m1.medium"));
  if (rec == nullptr) {
    std::printf("calibration record missing\n");
    return 1;
  }

  // (a) variance trace: windows of one hour, spread within each window.
  std::printf("(a) per-hour relative variance of the bandwidth trace:\n");
  util::Table trace({"hour", "mean Mbit/s", "min", "max", "(max-min)/max"});
  for (int hour = 0; hour < 8; ++hour) {
    const std::size_t begin = static_cast<std::size_t>(hour) * 60;
    const std::span<const double> window(rec->samples.data() + begin, 60);
    trace.add_row({std::to_string(hour), util::Table::num(util::mean(window), 1),
                   util::Table::num(util::min_of(window), 1),
                   util::Table::num(util::max_of(window), 1),
                   util::Table::num(
                       (util::max_of(window) - util::min_of(window)) /
                           util::max_of(window), 3)});
  }
  std::printf("%s", trace.to_string().c_str());
  std::printf("whole-trace max relative variance: %.1f%% (paper: ~50%%)\n\n",
              rec->max_relative_variance * 100);

  // (b) histogram + normality check.
  std::printf("(b) measurement histogram vs fitted Normal(mu=%.1f, "
              "sigma=%.1f):\n",
              rec->fitted_normal.mu, rec->fitted_normal.sigma);
  const auto hist = util::Histogram::from_samples(rec->samples, 16);
  for (std::size_t b = 0; b < hist.bin_count(); ++b) {
    const int bar = static_cast<int>(hist.masses()[b] * 300);
    std::printf("  %7.1f | %s\n", hist.centers()[b],
                std::string(static_cast<std::size_t>(bar), '#').c_str());
  }
  std::printf("\nKS test against the fitted Normal: D = %.4f, p = %.3f "
              "(p > 0.01 -> the Normal model is not rejected)\n",
              rec->ks_normal.statistic, rec->ks_normal.p_value);
  return 0;
}
