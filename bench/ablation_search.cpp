// Ablation: A* search vs generic search vs greedy-only on the workflow
// scheduling problem — states evaluated, wall time, and solution cost.
//
// DESIGN.md design choice under test: the paper claims A* prunes the space
// when the user supplies g/h heuristics ("we can efficiently prune the
// solution space by not placing the states with high g and h scores into
// the candidate list").
#include "bench/bench_common.hpp"

int main() {
  using namespace deco;
  using bench::env;
  bench::print_header(
      "Ablation: search strategies",
      "Generic (BFS) vs A* (cost heuristic + pruning) vs greedy-only on the\n"
      "scheduling problem (Montage-1/4, medium deadline, 96%)");

  util::Table table({"workflow", "strategy", "states", "pruned", "time ms",
                     "cost $", "feasible"});
  for (const int degree : {1, 4}) {
    util::Rng rng(7 + static_cast<std::uint64_t>(degree));
    const workflow::Workflow wf = workflow::make_montage(degree, rng);
    const auto bounds = bench::deadline_bounds(wf);
    const core::ProbDeadline req{0.96, bounds.medium()};

    core::TaskTimeEstimator estimator(env().catalog, env().store);
    vgpu::VirtualGpuBackend backend;
    core::SchedulingProblem problem(wf, estimator, backend);

    // Greedy only.
    {
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = problem.greedy_feasible(req);
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      table.add_row({wf.name(), "greedy",
                     std::to_string(r.stats.states_evaluated), "-",
                     util::Table::num(ms, 1),
                     util::Table::num(r.evaluation.mean_cost, 4),
                     r.found ? "yes" : "no"});
    }
    // Generic and A*.
    for (const bool astar : {false, true}) {
      core::SchedulingOptions options;
      options.use_astar = astar;
      const auto r = problem.solve(req, options);
      table.add_row({wf.name(), astar ? "A*" : "generic",
                     std::to_string(r.stats.states_evaluated),
                     std::to_string(r.stats.states_pruned),
                     util::Table::num(r.stats.elapsed_ms, 1),
                     util::Table::num(r.evaluation.mean_cost, 4),
                     r.found ? "yes" : "no"});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nShape check: A* reaches comparable cost with fewer or\n"
              "equally many evaluated states thanks to bound pruning.\n");
  return 0;
}
