// Use case 2, declaratively: the workflow-ensemble problem written as a
// WLog program (the shape the paper's technical report gives in its
// appendix).  The engine derives wkf/priority/wfcost/deadline_ok facts from
// the ensemble, and the program states the whole optimization:
// maximize the score of executed workflows subject to the ensemble budget,
// executing only workflows whose probabilistic deadline is satisfiable.
//
// Build & run:  ./examples/wlog_ensemble
#include <cstdio>
#include <string>

#include "core/deco.hpp"
#include "workflow/ensemble.hpp"

int main() {
  using namespace deco;

  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  const cloud::MetadataStore store =
      core::make_store_from_catalog(catalog, "ec2", 4000, 24, 7);

  util::Rng rng(29);
  workflow::EnsembleOptions eopt;
  eopt.app = workflow::AppType::kLigo;
  eopt.type = workflow::EnsembleType::kUniformUnsorted;
  eopt.num_workflows = 6;
  eopt.sizes = {20, 100};
  workflow::Ensemble ensemble = workflow::make_ensemble(eopt, rng);
  for (auto& m : ensemble.members) {
    m.deadline_s = 4 * 3600;
    m.deadline_q = 90;
  }
  ensemble.budget = 0.6;  // USD

  const std::string program = R"(
    import(amazonec2).
    import(ensemble).

    goal maximize S in totalscore(S).
    cons C in totalcost(C) satisfies budget(100%, )" +
                              std::to_string(ensemble.budget) + R"().
    cons forall(execute(W,1), deadline_ok(W)).
    var execute(W, Run) forall wkf(W).

    /* Eq. 4: the score of a workflow is 2^-priority */
    score(W, V) :- priority(W, P), V is pow(2, -P).
    totalscore(S) :- findall(V, (execute(W,1), score(W,V)), Bag),
        sum(Bag, S).
    /* Eq. 5: the ensemble budget covers the executed workflows */
    totalcost(C) :- findall(V, (execute(W,1), wfcost(W,V)), Bag),
        sum(Bag, C).
  )";

  core::DecoOptions options;
  options.backend = "serial";
  options.wlog_max_states = 128;
  core::Deco engine(catalog, store, options);
  const auto result = engine.solve_ensemble_program(program, ensemble);
  if (!result.ok) {
    std::printf("solve failed: %s\n", result.error.c_str());
    return 1;
  }

  std::printf("budget $%.3f, %zu workflows\n\n", ensemble.budget,
              ensemble.members.size());
  std::printf("%-6s %-9s %-10s %s\n", "member", "priority", "tasks",
              "decision");
  for (std::size_t i = 0; i < ensemble.members.size(); ++i) {
    std::printf("w%-5zu %-9d %-10zu %s\n", i, ensemble.members[i].priority,
                ensemble.members[i].workflow.task_count(),
                result.admitted[i] ? "execute" : "skip");
  }
  std::printf("\ntotal score %.3f / %.3f (%zu states searched in %.0f ms)\n",
              result.goal_value, ensemble.max_score(),
              result.stats.states_evaluated, result.stats.elapsed_ms);
  return 0;
}
