// Use case 1 (Section 3.1): scheduling a Montage workflow under a
// probabilistic deadline, Deco vs the Autoscaling heuristic, end-to-end
// through the Pegasus-like WMS and the simulated EC2 cloud.
//
// Build & run:  ./examples/montage_scheduling [degree]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "baselines/autoscaling.hpp"
#include "core/deco.hpp"
#include "util/stats.hpp"
#include "wms/pegasus.hpp"
#include "workflow/generators.hpp"

int main(int argc, char** argv) {
  using namespace deco;
  const int degree = argc > 1 ? std::atoi(argv[1]) : 1;

  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  const cloud::MetadataStore store =
      core::make_store_from_catalog(catalog, "ec2", 4000, 24, 7);

  util::Rng rng(7);
  const workflow::Workflow wf = workflow::make_montage(degree, rng);
  std::printf("%s: %zu tasks, %zu edges\n", wf.name().c_str(),
              wf.task_count(), wf.edge_count());

  // Derive a medium deadline per Section 6.1: (Dmin + Dmax) / 2, where Dmin
  // and Dmax are the expected cheap-plan makespans on m1.xlarge and m1.small.
  core::TaskTimeEstimator estimator(catalog, store);
  vgpu::VirtualGpuBackend backend;
  core::PlanEvaluator evaluator(wf, estimator, backend);
  const double d_min =
      evaluator
          .evaluate(sim::Plan::uniform(wf.task_count(), 3), {0.5, 1e9})
          .mean_makespan;
  const double d_max =
      evaluator
          .evaluate(sim::Plan::uniform(wf.task_count(), 0), {0.5, 1e9})
          .mean_makespan;
  const core::ProbDeadline req{0.96, 0.5 * (d_min + d_max)};
  std::printf("Probabilistic deadline: 96%% of runs within %.0f s "
              "(Dmin %.0f, Dmax %.0f)\n\n",
              req.deadline_s, d_min, d_max);

  // Plan with both schedulers through the WMS and execute 50 times each.
  core::DecoOptions options;
  core::Deco engine(catalog, store, options);
  wms::PegasusWms wms(catalog, store);

  struct Row {
    const char* name;
    std::vector<double> costs;
    std::vector<double> makespans;
    int met = 0;
  };
  std::vector<Row> rows{{"Deco", {}, {}, 0}, {"Autoscaling", {}, {}, 0}};

  for (Row& row : rows) {
    if (row.name == std::string("Deco")) {
      wms.set_scheduler(std::make_unique<wms::DecoScheduler>(engine));
    } else {
      wms.set_scheduler(std::make_unique<wms::AutoscalingScheduler>());
    }
    util::Rng plan_rng(11);
    auto planned = wms.plan_workflow(wf, req, plan_rng);
    const auto& exec = std::get<wms::ExecutableWorkflow>(planned);
    util::Rng run_rng(13);
    for (int i = 0; i < 50; ++i) {
      const auto report = wms.execute(exec, run_rng, req);
      row.costs.push_back(report.total_cost);
      row.makespans.push_back(report.makespan);
      row.met += report.met_deadline;
    }
  }

  std::printf("%-12s %12s %14s %12s\n", "scheduler", "avg cost $",
              "avg makespan s", "met deadline");
  for (const Row& row : rows) {
    std::printf("%-12s %12.4f %14.1f %9d/50\n", row.name,
                util::mean(row.costs), util::mean(row.makespans), row.met);
  }
  std::printf("\nDeco cost / Autoscaling cost = %.2f\n",
              util::mean(rows[0].costs) / util::mean(rows[1].costs));
  return 0;
}
