// Quickstart: the full Deco pipeline in one file.
//
//   1. parse a Pegasus DAX file (the paper's Figure 4 pipeline),
//   2. write a WLog program stating the optimization goal and a
//      probabilistic deadline (Example 1's shape),
//   3. let Deco search for a provisioning plan,
//   4. execute the plan on the simulated EC2 cloud and report cost/makespan.
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <variant>

#include "cloud/calibration.hpp"
#include "core/deco.hpp"
#include "sim/executor.hpp"
#include "workflow/dax.hpp"

namespace {

constexpr const char* kDax = R"(<?xml version="1.0" encoding="UTF-8"?>
<adag name="pipeline">
  <job id="ID01" name="process1" runtime="1500">
    <uses file="f.a"  link="input"  size="2147483648"/>
    <uses file="f.b1" link="output" size="1073741824"/>
  </job>
  <job id="ID02" name="process2" runtime="900">
    <uses file="f.b1" link="input"  size="1073741824"/>
    <uses file="f.b2" link="output" size="536870912"/>
  </job>
  <job id="ID03" name="process3" runtime="1200">
    <uses file="f.b2" link="input"  size="536870912"/>
    <uses file="f.c"  link="output" size="268435456"/>
  </job>
  <child ref="ID02"><parent ref="ID01"/></child>
  <child ref="ID03"><parent ref="ID02"/></child>
</adag>)";

// Example 1, adapted to this pipeline: minimize cost under a 90% / 1.2h
// probabilistic deadline.
constexpr const char* kProgram = R"(
  import(amazonec2).
  import(pipeline).
  goal minimize Ct in totalcost(Ct).
  cons T in maxtime(Path,T) satisfies deadline(90%, 4320).
  var configs(Tid,Vid,Con) forall task(Tid) and vm(Vid).

  /* time along an edge / path (Example 1's rules r1-r3) */
  path(X,Y,Y,Tp) :- edge(X,Y), exetime(X,Vid,T),
      configs(X,Vid,Con), Con == 1, Tp is T.
  path(X,Y,Z,Tp) :- edge(X,Z), Z \== Y, path(Z,Y,Z2,T1),
      exetime(X,Vid,T), configs(X,Vid,Con), Con == 1, Tp is T+T1.
  maxtime(Path,T) :- setof([Z,T1], path(root,tail,Z,T1), Set),
      max(Set, [Path,T]).
  /* monetary cost (rules r4-r5) */
  cost(Tid,Vid,C) :- price(Vid,Up), exetime(Tid,Vid,T),
      configs(Tid,Vid,Con), C is T*Up*Con.
  totalcost(Ct) :- findall(C, cost(Tid,Vid,C), Bag), sum(Bag, Ct).
)";

}  // namespace

int main() {
  using namespace deco;

  // --- the cloud: catalog + calibrated metadata store -----------------
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  const cloud::MetadataStore store =
      core::make_store_from_catalog(catalog, "ec2", 4000, 24, 7);
  std::printf("Cloud: %zu instance types, %zu regions, %zu calibrated "
              "histograms\n",
              catalog.type_count(), catalog.region_count(), store.size());

  // --- the workflow ----------------------------------------------------
  auto parsed = workflow::parse_dax(kDax);
  if (std::holds_alternative<workflow::DaxError>(parsed)) {
    std::printf("DAX error: %s\n",
                std::get<workflow::DaxError>(parsed).message.c_str());
    return 1;
  }
  const workflow::Workflow wf = std::get<workflow::Workflow>(parsed);
  std::printf("Workflow: %s, %zu tasks, %zu edges\n\n", wf.name().c_str(),
              wf.task_count(), wf.edge_count());

  // --- the declarative solve ------------------------------------------
  core::DecoOptions options;
  options.backend = "vgpu";
  core::Deco engine(catalog, store, options);
  const core::WlogSolveResult solved = engine.solve_program(kProgram, wf);
  if (!solved.ok) {
    std::printf("WLog solve failed: %s\n", solved.error.c_str());
    return 1;
  }
  std::printf("WLog solve: goal (expected cost) = $%.4f, feasible = %s, "
              "%zu states evaluated in %.1f ms\n",
              solved.goal_value, solved.feasible ? "yes" : "no",
              solved.stats.states_evaluated, solved.stats.elapsed_ms);
  for (workflow::TaskId t = 0; t < wf.task_count(); ++t) {
    std::printf("  %-6s -> %s\n", wf.task(t).name.c_str(),
                catalog.type(solved.plan[t].vm_type).name.c_str());
  }

  // --- run the plan on the simulated cloud -----------------------------
  util::Rng rng(2015);
  std::printf("\nExecuting the plan 5 times on the simulated cloud:\n");
  for (int run = 0; run < 5; ++run) {
    const auto result = sim::simulate_execution(wf, solved.plan, catalog, rng);
    std::printf("  run %d: makespan %.1f s, billed cost $%.4f, "
                "%zu instances\n",
                run, result.makespan, result.total_cost,
                result.instances_used);
  }
  return 0;
}
