// Fault-tolerant execution and reactive replanning, end to end.
//
//   1. build the calibrated EC2 cloud and a Montage workflow,
//   2. let Deco produce a static plan for a 90% probabilistic deadline,
//   3. execute it open-loop on a cloud with injected failures (instance
//      crashes, transient task failures, stragglers) and watch the retry
//      machinery absorb them,
//   4. run the same workload through wms::ReactiveEngine, which replans
//      the residual DAG when failures put the deadline at risk,
//   5. show the failure-aware evaluator inflating its makespan estimate.
//
// Build & run:  ./examples/fault_tolerant_run
//
// Pass --trace-out trace.json to capture a Chrome trace of the whole demo:
// solver/evaluator spans from the instrumentation layer plus one timeline
// track group per open-loop run (instances as tracks, task attempts and
// retries as slices).  Load the file in chrome://tracing or Perfetto.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cloud/calibration.hpp"
#include "core/deco.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "sim/executor.hpp"
#include "wms/reactive.hpp"
#include "workflow/generators.hpp"

int main(int argc, char** argv) {
  using namespace deco;

  std::string trace_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0) trace_path = argv[i + 1];
  }
  const bool tracing = !trace_path.empty();
  if (tracing) obs::TraceCollector::instance().set_enabled(true);

  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  const cloud::MetadataStore store =
      core::make_store_from_catalog(catalog, "ec2", 4000, 24, 7);
  util::Rng wf_rng(7);
  const workflow::Workflow wf = workflow::make_montage(1, wf_rng);
  std::printf("Workflow: %s, %zu tasks\n", wf.name().c_str(), wf.task_count());

  // A cloud that misbehaves: one crash every two hours of instance uptime,
  // 3% transient attempt failures, 5% stragglers.
  sim::FailureModelOptions fm;
  fm.crash_mtbf_s = 2 * 3600;
  fm.task_failure_prob = 0.03;
  fm.straggler_prob = 0.05;
  const sim::FailureModel failures(fm);

  // --- static plan ------------------------------------------------------
  core::Deco engine(catalog, store);
  core::SchedulingOptions sched;
  sched.search.max_states = 256;
  core::TaskTimeEstimator estimator(catalog, store);
  vgpu::VirtualGpuBackend backend;
  core::PlanEvaluator baseline_eval(wf, estimator, backend);
  const double deadline =
      1.35 * baseline_eval
                 .evaluate(sim::Plan::uniform(
                               wf.task_count(),
                               static_cast<cloud::TypeId>(
                                   catalog.type_count() - 1)),
                           {0.5, 1e12})
                 .mean_makespan;
  const core::ProbDeadline req{0.9, deadline};
  const sim::Plan plan = engine.schedule(wf, req, sched).plan;
  std::printf("Deadline: %.0f s at 90%%\n\n", deadline);

  // --- open-loop execution under failures -------------------------------
  std::printf("Open-loop execution (retries, no replanning):\n");
  util::Rng rng(2015);
  sim::ExecutorOptions exec;
  exec.failures = &failures;
  std::vector<obs::TraceEvent> timelines;
  for (int run = 0; run < 3; ++run) {
    const auto r = sim::simulate_execution(wf, plan, catalog, rng, exec);
    if (tracing) {
      // One trace process per run so the instance tracks of the three runs
      // stay separate; pid 1 is reserved for the instrumentation spans.
      const auto events = obs::execution_timeline(wf, r, &catalog, run + 2);
      timelines.insert(timelines.end(), events.begin(), events.end());
    }
    std::printf(
        "  run %d: makespan %.0f s (%s), cost $%.4f — %zu crashes, "
        "%zu task failures, %zu stragglers, %zu retries\n",
        run, r.makespan, r.makespan <= deadline ? "met" : "MISSED",
        r.total_cost, r.failures.instance_crashes, r.failures.task_failures,
        r.failures.stragglers, r.failures.retries);
  }

  // --- closed-loop execution through the reactive engine ----------------
  std::printf("\nReactive execution (replan residual DAG on failure):\n");
  wms::DecoScheduler scheduler(engine, sched);
  for (int run = 0; run < 3; ++run) {
    wms::ReactiveOptions options;
    options.executor.failures = &failures;
    options.seed = 2015 + static_cast<std::uint64_t>(run);
    wms::ReactiveEngine reactive(catalog, store, scheduler, options);
    const wms::ReactiveReport report = reactive.run(wf, req);
    std::printf(
        "  run %d: makespan %.0f s (%s), cost $%.4f — %zu replans, "
        "%zu disruptions, final plan by %s\n",
        run, report.makespan, report.met_deadline ? "met" : "MISSED",
        report.total_cost, report.replans,
        report.failures.total_disruptions(), report.last_scheduler.c_str());
  }

  // --- failure-aware evaluation -----------------------------------------
  core::EvalOptions aware_opt;
  aware_opt.failure_model = &failures;
  core::PlanEvaluator aware_eval(wf, estimator, backend, aware_opt);
  const auto clean = baseline_eval.evaluate(plan, req);
  const auto aware = aware_eval.evaluate(plan, req);
  std::printf(
      "\nFailure-aware evaluator: mean makespan %.0f s -> %.0f s "
      "(x%.2f retry inflation), deadline %s -> %s\n",
      clean.mean_makespan, aware.mean_makespan,
      aware.mean_makespan / clean.mean_makespan,
      clean.feasible ? "feasible" : "infeasible",
      aware.feasible ? "feasible" : "infeasible");

  if (tracing) {
    auto& collector = obs::TraceCollector::instance();
    collector.set_enabled(false);
    std::vector<obs::TraceEvent> events = collector.snapshot();
    events.insert(events.end(), timelines.begin(), timelines.end());
    std::ofstream file(trace_path);
    obs::write_chrome_trace(file, events);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("\nwrote trace to %s (load in chrome://tracing)\n",
                trace_path.c_str());
  }
  return 0;
}
