// Use case 2 (Section 3.2): planning a workflow ensemble under a budget and
// per-workflow probabilistic deadlines — Deco's A*-searched admission vs the
// SPSS baseline.
//
// Build & run:  ./examples/ensemble_planning
#include <cstdio>

#include "baselines/spss.hpp"
#include "core/deco.hpp"
#include "workflow/ensemble.hpp"

int main() {
  using namespace deco;

  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  const cloud::MetadataStore store =
      core::make_store_from_catalog(catalog, "ec2", 4000, 24, 7);

  // A LIGO ensemble (uniform unsorted, 12 members, 20-100 task workflows).
  util::Rng rng(21);
  workflow::EnsembleOptions eopt;
  eopt.app = workflow::AppType::kLigo;
  eopt.type = workflow::EnsembleType::kUniformUnsorted;
  eopt.num_workflows = 12;
  eopt.sizes = {20, 100};
  workflow::Ensemble ensemble = workflow::make_ensemble(eopt, rng);
  for (auto& member : ensemble.members) {
    member.deadline_s = 4 * 3600;  // 4 hours each
    member.deadline_q = 96;
  }

  // Size the budget between MinBudget and MaxBudget (Section 6.1): first ask
  // SPSS what everything would cost, then grant 40% of that.
  vgpu::VirtualGpuBackend backend;
  baselines::Spss spss(catalog, store, backend);
  auto probe = ensemble;
  probe.budget = 1e9;
  const auto everything = spss.plan(probe);
  ensemble.budget = 0.4 * everything.total_cost;
  std::printf("Ensemble: %zu LIGO workflows, budget $%.3f (40%% of the "
              "admit-everything cost), per-workflow deadline 4 h @ 96%%\n\n",
              ensemble.members.size(), ensemble.budget);

  const auto spss_result = spss.plan(ensemble);

  core::Deco engine(catalog, store);
  const auto deco_result = engine.plan_ensemble(ensemble);

  auto show = [&](const char* name, const std::vector<bool>& admitted,
                  double score, double cost) {
    std::printf("%-6s admitted:", name);
    for (bool a : admitted) std::printf(" %c", a ? 'Y' : '.');
    std::printf("\n%-6s score = %.3f / %.3f, cost = $%.3f\n\n", name, score,
                ensemble.max_score(), cost);
  };
  show("SPSS", spss_result.admitted, spss_result.score,
       spss_result.total_cost);
  show("Deco", deco_result.admitted, deco_result.score,
       deco_result.total_cost);

  std::printf("Deco / SPSS score ratio: %.2f\n",
              spss_result.score > 0 ? deco_result.score / spss_result.score
                                    : deco_result.score);
  return 0;
}
