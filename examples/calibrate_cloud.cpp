// Cloud calibration demo (Section 6.1/6.2): run the micro-benchmark pass
// against the simulated EC2, fit distributions, check normality, and persist
// the metadata store — the input every other component consumes.
//
// Build & run:  ./examples/calibrate_cloud [output-path]
#include <cstdio>

#include "cloud/calibration.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace deco;

  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  cloud::MetadataStore store;
  cloud::CalibrationOptions options;
  options.samples_per_setting = 10000;  // 7 days at one sample per minute

  util::Rng rng(2015);
  std::printf("Calibrating %zu instance types (%zu samples per setting)...\n",
              catalog.type_count(), options.samples_per_setting);
  const auto report = cloud::calibrate(catalog, store, options, rng);

  util::Table table({"setting", "fitted", "KS p-value", "max variance"});
  for (const auto& rec : report.records) {
    const bool is_seq = rec.key.find("seq_io") != std::string::npos;
    const std::string fitted =
        is_seq ? util::Gamma{rec.fitted_gamma.k, rec.fitted_gamma.theta}.k > 0
                     ? "Gamma(k=" + util::Table::num(rec.fitted_gamma.k, 1) +
                           ", theta=" + util::Table::num(rec.fitted_gamma.theta, 2) + ")"
                     : "-"
               : "Normal(mu=" + util::Table::num(rec.fitted_normal.mu, 1) +
                     ", sigma=" + util::Table::num(rec.fitted_normal.sigma, 1) + ")";
    table.add_row({rec.key, fitted, util::Table::num(rec.ks_normal.p_value, 3),
                   util::Table::num(rec.max_relative_variance * 100, 1) + "%"});
  }
  std::printf("%s\n", table.to_string().c_str());

  const std::string path = argc > 1 ? argv[1] : "metadata_store.txt";
  if (store.save(path)) {
    std::printf("Metadata store (%zu histograms) saved to %s\n", store.size(),
                path.c_str());
  } else {
    std::printf("Could not write %s\n", path.c_str());
    return 1;
  }
  return 0;
}
