// Use case 3 (Section 3.3): follow-the-cost — migrating running workflows
// between EC2 regions at runtime.  Deco re-optimizes each period with its
// generic search; the Heuristic baseline follows an offline price-based plan
// with threshold-triggered adjustments.
//
// Build & run:  ./examples/multicloud_migration
#include <cstdio>
#include <functional>
#include <map>

#include "workflow/analysis.hpp"

#include "baselines/migration_heuristic.hpp"
#include "core/deco.hpp"
#include "workflow/generators.hpp"

int main() {
  using namespace deco;

  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  const cloud::MetadataStore store =
      core::make_store_from_catalog(catalog, "ec2", 4000, 24, 7);

  // A mixed fleet: half the Montage workflows start in Singapore (33%
  // pricier), half in us-east.
  util::Rng rng(31);
  std::vector<workflow::Workflow> workflows;
  for (int i = 0; i < 6; ++i) {
    workflows.push_back(workflow::make_montage(1, rng));
  }
  core::TaskTimeEstimator estimator(catalog, store);

  // Workflows are already partially executed (30-50% of their levels), so a
  // migration must pay to move the frontier's intermediate data — the
  // trade-off that separates Deco from the price-only heuristic.
  auto make_states = [&]() {
    std::vector<core::MigrationWorkflowState> states;
    for (std::size_t i = 0; i < workflows.size(); ++i) {
      core::MigrationWorkflowState s;
      s.wf = &workflows[i];
      s.finished.assign(workflows[i].task_count(), false);
      s.region = i % 2 == 0 ? 1 : 0;  // even ones start in Singapore
      s.vm_type = 1;
      s.deadline_s = 48 * 3600;
      const auto levels = workflow::levels(workflows[i]);
      int max_level = 0;
      for (int l : levels) max_level = std::max(max_level, l);
      const double frac = 0.3 + 0.1 * static_cast<double>(i % 3);
      std::map<int, double> level_time;
      for (workflow::TaskId t = 0; t < workflows[i].task_count(); ++t) {
        if (levels[t] < frac * (max_level + 1)) {
          s.finished[t] = true;
          auto& slot = level_time[levels[t]];
          slot = std::max(slot, estimator.mean_time(workflows[i], t, s.vm_type));
        }
      }
      double expected = 0;
      for (const auto& [level, time] : level_time) expected += time;
      s.elapsed_s = expected * (0.7 + 0.3 * static_cast<double>(i % 4));
      states.push_back(std::move(s));
    }
    return states;
  };

  // Deco policy: re-optimize the migration vector every period.
  core::MigrationOptimizer optimizer(catalog, estimator);
  auto deco_policy =
      [&](const std::vector<core::MigrationWorkflowState>& states) {
        return optimizer.optimize(states).targets;
      };

  // Heuristic baseline policy.
  baselines::MigrationHeuristic heuristic(catalog, estimator);

  util::Rng rng_a(41);
  const auto deco_report =
      core::run_followcost_scenario(make_states(), catalog, deco_policy, rng_a);
  util::Rng rng_b(41);
  const auto heuristic_report = core::run_followcost_scenario(
      make_states(), catalog, std::ref(heuristic), rng_b);

  std::printf("%-10s %10s %10s %10s %6s %6s\n", "policy", "exec $", "migr $",
              "total $", "moves", "late");
  auto show = [](const char* name, const core::FollowCostReport& r) {
    std::printf("%-10s %10.3f %10.3f %10.3f %6zu %6zu\n", name,
                r.execution_cost, r.migration_cost, r.total_cost, r.migrations,
                r.deadline_violations);
  };
  show("Deco", deco_report);
  show("Heuristic", heuristic_report);
  std::printf("\nDeco / Heuristic total cost = %.3f\n",
              deco_report.total_cost / heuristic_report.total_cost);
  return 0;
}
